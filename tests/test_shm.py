"""Shared-memory frame pool: slots, transport, spill, and cleanup.

Covers the :mod:`repro.net.shm` primitives in-process (refcounted slot
lifecycle, protocol-5 encode/decode round-trips, published objects) and
the ``ProcessMachine`` integration: exhausted pools spill to the
pickled path without changing any result, and a crashing worker leaves
no ``/dev/shm`` entry behind because only the driver ever owns
segments.
"""

import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.core.edge_iterator import edge_iterator
from repro.core.engine import EngineConfig, counting_program
from repro.graphs import distribute
from repro.graphs import generators as gen
from repro.net.frames import BROADCAST, ForwardFrame, Record, RecordFrame
from repro.net.parallel import ProcessMachine
from repro.net.reliable import TransportError
from repro.net.shm import (
    SharedFramePool,
    ShmPayload,
    attach_object,
    publish_object,
    shm_supported,
)

pytestmark = pytest.mark.skipif(
    not shm_supported(), reason="multiprocessing.shared_memory unavailable"
)


@pytest.fixture
def pool():
    p = SharedFramePool(4, 4096, mp.Lock())
    yield p
    p.destroy()


def _frame(seed=0, n=40):
    rng = np.random.default_rng(seed)
    return RecordFrame.from_records(
        [
            Record(
                vertex=int(rng.integers(0, 100)),
                neighbors=np.sort(rng.choice(100, size=5, replace=False)).astype(
                    np.int64
                ),
                target=int(rng.integers(0, 100)) if i % 2 else BROADCAST,
            )
            for i in range(n)
        ]
    )


def _shm_entries():
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


# ---------------------------------------------------------------------------
# Slot lifecycle
# ---------------------------------------------------------------------------


def test_allocate_release_cycle(pool):
    slots = [pool.allocate() for _ in range(4)]
    assert sorted(slots) == [0, 1, 2, 3]
    assert pool.allocate() is None  # exhausted
    assert pool.live_slots() == 4
    for s in slots:
        pool.release(s)
    assert pool.live_slots() == 0
    assert pool.allocate() is not None  # reusable again


def test_refcounted_fanout(pool):
    s = pool.allocate()
    pool.acquire(s)  # second reader
    pool.release(s)
    assert pool.live_slots() == 1  # still referenced once
    pool.release(s)
    assert pool.live_slots() == 0


def test_release_underflow_rejected(pool):
    s = pool.allocate()
    pool.release(s)
    with pytest.raises(ValueError):
        pool.release(s)
    with pytest.raises(ValueError):
        pool.acquire(s)


# ---------------------------------------------------------------------------
# Payload encode / decode
# ---------------------------------------------------------------------------


def test_frame_roundtrip(pool):
    frame = _frame()
    descriptor, nbytes, spilled = pool.encode(frame)
    assert isinstance(descriptor, ShmPayload) and not spilled
    assert nbytes > 0 and pool.live_slots() == 1
    out = pool.decode(descriptor)
    assert pool.live_slots() == 1  # slot stays live while the payload is held
    assert isinstance(out, RecordFrame)
    np.testing.assert_array_equal(out.vertices, frame.vertices)
    np.testing.assert_array_equal(out.targets, frame.targets)
    np.testing.assert_array_equal(out.xadj, frame.xadj)
    np.testing.assert_array_equal(out.neighbors, frame.neighbors)
    # Zero-copy: the arrays are read-only views into the slot, and the
    # slot recycles exactly when the last view is garbage-collected.
    assert not out.neighbors.flags.writeable
    del out
    assert pool.live_slots() == 0


def test_mixed_payload_shapes_roundtrip(pool):
    """Every payload shape the aggregation layer emits must survive."""
    frame = _frame(1)
    fwd = ForwardFrame(
        final_dests=np.arange(len(frame), dtype=np.int64) % 3, frame=_frame(2)
    )
    for payload in [frame, fwd, [frame, ("misc", 7)], [("token", 1), ("token", 2)]]:
        descriptor, _, _ = pool.encode(payload)
        if descriptor is None:  # no array body worth a slot: legacy path
            continue
        out = pool.decode(descriptor)
        assert type(out) is type(payload)
        del out  # drop the slot views so the next iteration can allocate


def test_min_bytes_keeps_small_payloads_on_legacy_path(pool):
    descriptor, nbytes, spilled = pool.encode(_frame(n=2), min_bytes=1 << 20)
    assert descriptor is None and not spilled  # too small to be worth a slot
    assert nbytes > 0


def test_oversized_payload_spills(pool):
    big = RecordFrame.from_records(
        [Record(vertex=0, neighbors=np.arange(5000, dtype=np.int64), target=1)]
    )
    descriptor, _, spilled = pool.encode(big)
    assert descriptor is None and spilled
    assert pool.live_slots() == 0


def test_exhausted_pool_spills(pool):
    held = [pool.encode(_frame(i))[0] for i in range(4)]
    assert all(h is not None for h in held)
    descriptor, _, spilled = pool.encode(_frame(9))
    assert descriptor is None and spilled
    pool.decode(held[0])  # free one slot; sends fit again
    descriptor, _, spilled = pool.encode(_frame(9))
    assert descriptor is not None and not spilled


def test_cross_process_roundtrip(pool):
    """A forked worker decodes what the parent encoded, and vice versa."""
    frame = _frame(5)
    descriptor, _, _ = pool.encode(frame)
    handle, lock = pool.handle(), pool.lock

    def child(conn):
        worker_pool = SharedFramePool.attach(handle, lock)
        out = worker_pool.decode(descriptor)
        back, _, _ = worker_pool.encode(out)
        del out  # release the decoded views' slot before detaching
        conn.send(back)
        worker_pool.close()

    parent_conn, child_conn = mp.Pipe()
    proc = mp.get_context("fork").Process(target=child, args=(child_conn,))
    proc.start()
    returned = parent_conn.recv()
    proc.join(timeout=30)
    out = pool.decode(returned)
    np.testing.assert_array_equal(out.neighbors, frame.neighbors)
    del out
    assert pool.live_slots() == 0


def test_broadcast_fanout_shares_one_slot(pool):
    """Sending one payload object to many dests fills a single slot."""
    import pickle

    from repro.net.messages import Message
    from repro.net.parallel import _QueueBus

    class _SinkChannel:
        def __init__(self):
            self.frames = []

        def send_bytes(self, data, pump):
            self.frames.append(data)

    channels = [_SinkChannel() for _ in range(4)]
    bus = _QueueBus(channels, pool)
    frame = _frame(3)
    for dest in range(1, 4):
        bus._deliver(
            Message(
                src=0, dest=dest, tag=("t",), payload=frame,
                words=frame.words, send_time=0.0,
            )
        )
    descs = [pickle.loads(c.frames[0]).payload for c in channels[1:]]
    assert all(isinstance(d, ShmPayload) for d in descs)
    assert len({d.slot for d in descs}) == 1  # one physical copy
    outs = [pool.decode(d) for d in descs]
    for o in outs:
        np.testing.assert_array_equal(o.neighbors, frame.neighbors)
    del outs, o  # the loop variable aliases the last decoded frame
    assert pool.live_slots() == 1  # only the bus cache still pins the slot
    bus._evict_cache()
    assert pool.live_slots() == 0


def test_control_message_after_cache_gc_stays_unpooled(pool):
    """Regression: a dead cache weakref returns None — a control message
    with a ``None`` payload must not inherit the stale descriptor."""
    import pickle

    from repro.net.messages import Message
    from repro.net.parallel import _QueueBus

    class _SinkChannel:
        def __init__(self):
            self.frames = []

        def send_bytes(self, data, pump):
            self.frames.append(data)

    channels = [_SinkChannel() for _ in range(2)]
    bus = _QueueBus(channels, pool)
    frame = _frame(4)
    bus._deliver(
        Message(src=0, dest=1, tag=("t",), payload=frame, words=frame.words,
                send_time=0.0)
    )
    del frame  # cache weakref now resolves to None
    bus._deliver(
        Message(src=0, dest=1, tag=("barrier",), payload=None, words=1,
                send_time=0.0)
    )
    control = pickle.loads(channels[1].frames[1])
    assert control.payload is None


# ---------------------------------------------------------------------------
# Published objects (the graph views)
# ---------------------------------------------------------------------------


def test_publish_attach_object_zero_copy():
    g = gen.rgg2d(200, expected_edges=1200, seed=3)
    dist = distribute(g, num_pes=2)
    view = dist.view(0)
    published = publish_object(view)
    assert published is not None
    handle, seg = published
    try:
        out, out_seg = attach_object(handle)
        np.testing.assert_array_equal(out.xadj, view.xadj)
        np.testing.assert_array_equal(out.adjncy, view.adjncy)
        assert not out.adjncy.flags.writeable  # view into the shared segment
        del out
        out_seg.close()
    finally:
        seg.close()
        seg.unlink()


def test_publish_object_without_arrays_declines():
    assert publish_object(("just", "strings", 3)) is None


# ---------------------------------------------------------------------------
# ProcessMachine integration
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def graph():
    return gen.rgg2d(500, expected_edges=4000, seed=11)


def test_exhausted_machine_pool_spills_and_stays_exact(graph):
    """A deliberately tiny pool must degrade, not deadlock or corrupt."""
    truth = edge_iterator(graph).triangles
    dist = distribute(graph, num_pes=3)
    machine = ProcessMachine(3, shm=True, shm_slots=1, shm_slot_bytes=4096)
    res = machine.run(counting_program, dist, EngineConfig(contraction=True))
    assert res.values[0].triangles_total == truth
    assert res.metrics.total_shm_spills > 0  # the tiny pool really overflowed


def test_disabled_pool_counts_nothing(graph):
    dist = distribute(graph, num_pes=2)
    res = ProcessMachine(2, shm=False).run(
        counting_program, dist, EngineConfig()
    )
    assert res.metrics.total_shm_frames == 0
    assert res.metrics.total_bytes_moved == 0


def test_env_knobs(monkeypatch):
    monkeypatch.setenv("REPRO_SHM_FRAMES", "0")
    assert ProcessMachine(2).shm is False
    monkeypatch.setenv("REPRO_SHM_FRAMES", "1")
    monkeypatch.setenv("REPRO_SHM_SLOTS", "7")
    monkeypatch.setenv("REPRO_SHM_SLOT_BYTES", "8192")
    m = ProcessMachine(2)
    assert m.shm is True and m.shm_slots == 7 and m.shm_slot_bytes == 8192
    # explicit kwargs win over the environment
    m = ProcessMachine(2, shm=False, shm_slots=3)
    assert m.shm is False and m.shm_slots == 3


def _crashing_program(ctx, dist, cfg):
    yield
    if ctx.rank == 1:
        raise TransportError("injected link failure")
    while True:
        yield


def test_worker_crash_leaks_no_segments(graph):
    """Driver-owned segments are unlinked even when a worker dies."""
    dist = distribute(graph, num_pes=3)
    before = _shm_entries()
    with pytest.raises(RuntimeError, match="TransportError"):
        ProcessMachine(3, shm=True, timeout=60).run(
            _crashing_program, dist, EngineConfig()
        )
    assert _shm_entries() - before == set()


def test_simulated_accounting_has_no_transport_counters(graph):
    """shm counters are wall-side only: absent from summary(), zero in sim."""
    from repro.net import Machine

    dist = distribute(graph, num_pes=2)
    res = Machine(2).run(counting_program, dist, EngineConfig())
    summary = res.metrics.summary()
    assert "shm_frames" not in summary and "bytes_moved" not in summary
    assert res.metrics.total_shm_frames == 0
    assert res.metrics.total_bytes_moved == 0
