"""The event-driven simulation engine (``repro.sim``).

Three contracts under test:

1. **Compat bit-identity** (the migration guarantee): under the default
   ``Network(model="alpha-beta")``, the event scheduler replays the
   legacy round-robin scheduler bit-identically — same values, same
   ``simulated_time``, same per-PE message/word counters, same event
   counter — across all eight algorithm variants (fingerprint in the
   style of ``tests/test_frames.py``).
2. **Exact deadlock detection**: an all-blocked machine raises
   :class:`DeadlockError` from the empty event queue immediately, with
   the full per-PE forensics; courtesy yields never trip it.
3. **Contention**: the ``"contended"`` network model queues messages on
   busy links (arrival later than alpha-beta), bypasses links within a
   node, and stays deterministic.
"""

import pytest

from repro.analysis.runner import _ENGINE_CONFIGS
from repro.baselines.havoqgt import havoqgt_program
from repro.baselines.tric import tric_program
from repro.core.edge_iterator import edge_iterator
from repro.core.engine import counting_program
from repro.graphs import distribute
from repro.graphs import generators as gen
from repro.net import DeadlockError, Machine, Network
from repro.net.comm import barrier, sparse_alltoall
from repro.sim import (
    PRIORITY_DELIVERY,
    PRIORITY_RESUME,
    PRIORITY_TIMER,
    EventQueue,
    NetworkStats,
)
from repro.sim.engine import LIVELOCK_ROUNDS


# ---------------------------------------------------------------------------
# Event queue units
# ---------------------------------------------------------------------------


def test_event_queue_orders_by_time_then_priority_then_seq():
    q = EventQueue()
    order = []
    q.push(2.0, PRIORITY_RESUME, lambda: order.append("late"))
    q.push(1.0, PRIORITY_RESUME, lambda: order.append("resume"))
    q.push(1.0, PRIORITY_TIMER, lambda: order.append("timer"))
    q.push(1.0, PRIORITY_DELIVERY, lambda: order.append("delivery-a"))
    q.push(1.0, PRIORITY_DELIVERY, lambda: order.append("delivery-b"))
    while True:
        ev = q.pop()
        if ev is None:
            break
        ev.fn()
    # Same time: deliveries first, then timers, then resumes; equal
    # (time, priority) resolved by insertion order.
    assert order == ["delivery-a", "delivery-b", "timer", "resume", "late"]
    assert q.now == 2.0


def test_event_queue_cancellation_and_peek():
    q = EventQueue()
    keep = q.push(1.0, PRIORITY_TIMER, lambda: "keep")
    drop = q.push(0.5, PRIORITY_TIMER, lambda: "drop")
    drop.cancelled = True
    assert q.peek_time() == 1.0
    assert q.pop() is keep
    assert q.pop() is None
    assert len(q) == 0 and not q


def test_event_queue_now_is_monotone():
    q = EventQueue()
    q.push(3.0, PRIORITY_TIMER, lambda: None)
    q.push(1.0, PRIORITY_TIMER, lambda: None)
    assert q.pop().time == 1.0
    assert q.now == 1.0
    assert q.pop().time == 3.0
    assert q.now == 3.0


# ---------------------------------------------------------------------------
# Network units
# ---------------------------------------------------------------------------


def test_network_validation():
    with pytest.raises(ValueError):
        Network(model="token-ring")
    with pytest.raises(ValueError):
        Network(node_size=0)
    with pytest.raises(ValueError):
        Network(oversubscription=0.5)


def test_alpha_beta_network_is_instant():
    from repro.net import DEFAULT_SPEC

    net = Network()
    net.bind(DEFAULT_SPEC, 8)
    assert net.arrival_time(0, 7, 100, 3.5) == 3.5
    stats = net.stats()
    assert stats.queue_seconds == 0.0 and stats.links_used == 0


def test_contended_links_queue_and_intra_node_bypasses():
    from repro.net import DEFAULT_SPEC

    net = Network(model="contended", node_size=4)
    net.bind(DEFAULT_SPEC, 8)
    transit = net.transit_time(10)
    # Intra-node: no link claimed, arrival is the injection time.
    assert net.arrival_time(0, 3, 10, 1.0) == 1.0
    # First inter-node message: uplink then downlink, no queueing.
    a1 = net.arrival_time(0, 4, 10, 0.0)
    assert a1 == pytest.approx(2 * transit)
    # Second message injected at the same instant queues behind it on
    # both links.
    a2 = net.arrival_time(1, 5, 10, 0.0)
    assert a2 > a1
    stats = net.stats()
    assert stats.queue_seconds > 0.0
    assert stats.max_link_queue_seconds > 0.0
    assert stats.messages == 4  # 2 messages x (uplink + downlink)


def test_bind_rederives_constants_and_resets_links():
    from repro.net import DEFAULT_SPEC

    net = Network(model="contended", node_size=2, oversubscription=2.0)
    net.bind(DEFAULT_SPEC, 4)
    assert net.link_alpha == DEFAULT_SPEC.alpha
    assert net.link_beta == pytest.approx(2.0 * DEFAULT_SPEC.beta)
    net.arrival_time(0, 2, 5, 0.0)
    assert net.stats().messages > 0
    net.bind(DEFAULT_SPEC, 4)
    assert net.stats().messages == 0


# ---------------------------------------------------------------------------
# Machine facade / scheduler selection
# ---------------------------------------------------------------------------


def test_unknown_scheduler_rejected():
    with pytest.raises(ValueError, match="scheduler"):
        Machine(2, scheduler="fifo")


def test_round_robin_refuses_contended_network():
    with pytest.raises(ValueError, match="round-robin"):
        Machine(2, network=Network(model="contended"), scheduler="round-robin")


def test_engine_stats_reported_only_by_event_scheduler():
    def prog(ctx):
        yield from barrier(ctx)
        return ctx.rank

    ev = Machine(4).run(prog)
    rr = Machine(4, scheduler="round-robin").run(prog)
    assert ev.engine is not None and ev.engine.discipline == "compat-heap"
    assert ev.engine.steps > 0 and ev.engine.wakeups > 0
    assert rr.engine is None
    # alpha-beta runs carry no link stats (nothing to contend for).
    assert ev.network is None


# ---------------------------------------------------------------------------
# Compat bit-identity fingerprint: 2 generators x 3 seeds x 8 variants
# ---------------------------------------------------------------------------

ALGOS = (*_ENGINE_CONFIGS, "tric", "havoqgt")


def _program_of(algorithm, dist):
    if algorithm in _ENGINE_CONFIGS:
        return counting_program, (dist, _ENGINE_CONFIGS[algorithm])
    if algorithm == "tric":
        return tric_program, (dist,)
    return havoqgt_program, (dist,)


def _graph(generator, seed):
    if generator == "rmat":
        return gen.rmat(8, 8, seed=seed)
    return gen.rgg3d(300, expected_edges=2400, seed=seed)


def _triangles_of(value):
    return getattr(value, "triangles_total", None) or getattr(value, "triangles", value)


@pytest.mark.parametrize("seed", [101, 102, 103])
@pytest.mark.parametrize("generator", ["rmat", "rgg3d"])
def test_event_scheduler_is_bit_identical_to_round_robin(generator, seed):
    graph = _graph(generator, seed)
    truth = edge_iterator(graph).triangles
    dist = distribute(graph, num_pes=4)
    for algorithm in ALGOS:
        program, args = _program_of(algorithm, dist)
        ev = Machine(4).run(program, *args)
        rr = Machine(4, scheduler="round-robin").run(program, *args)
        label = f"{algorithm}/{generator}/{seed}"
        # Same answer, and the right one.
        assert _triangles_of(ev.values[0]) == truth, label
        # Bit-identical simulated time and event counter.
        assert ev.time == rr.time, label
        assert ev.events == rr.events, label
        # Bit-identical per-PE communication accounting.
        for em, rm in zip(ev.metrics.per_pe, rr.metrics.per_pe):
            assert em.clock == rm.clock, label
            assert em.messages_sent == rm.messages_sent, label
            assert em.words_sent == rm.words_sent, label
            assert em.messages_received == rm.messages_received, label
            assert em.words_received == rm.words_received, label


# ---------------------------------------------------------------------------
# Exact deadlock detection + livelock guard
# ---------------------------------------------------------------------------


def test_exact_deadlock_detected_with_forensics():
    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.recv("never-sent")
        return None
        yield  # pragma: no cover

    with pytest.raises(DeadlockError) as err:
        Machine(2).run(prog)
    msg = str(err.value)
    assert "exact deadlock" in msg
    assert "waiting PEs: [0]" in msg
    assert "blocked on recv" in msg and "never-sent" in msg


def test_courtesy_yields_do_not_deadlock_event_scheduler():
    def prog(ctx):
        for _ in range(LIVELOCK_ROUNDS - 2):
            yield
        return ctx.rank

    res = Machine(3).run(prog)
    assert res.values == [0, 1, 2]


def test_livelock_guard_catches_infinite_spinner():
    def prog(ctx):
        if ctx.rank == 0:
            while True:
                yield  # never blocks, never progresses
        return None
        yield  # pragma: no cover

    with pytest.raises(DeadlockError) as err:
        Machine(2).run(prog)
    assert "livelock" in str(err.value)


def test_wakeup_mid_round_matches_round_robin_order():
    """A message sent by a lower rank wakes a higher rank in-round."""

    def prog(ctx):
        if ctx.rank == 0:
            ctx.charge(10)
            ctx.send(2, "t", "x", 1)
        elif ctx.rank == 2:
            msg = yield from ctx.recv("t")
            return msg.payload
        return None
        yield  # pragma: no cover

    ev = Machine(3).run(prog)
    rr = Machine(3, scheduler="round-robin").run(prog)
    assert ev.values == rr.values == [None, None, "x"]
    assert ev.time == rr.time
    assert ev.events == rr.events


# ---------------------------------------------------------------------------
# Contended model end-to-end
# ---------------------------------------------------------------------------


def _pairwise_exchange(ctx):
    """Every PE sends one message to its cross-node partner and drains."""
    payloads = [(ctx.num_pes - 1 - ctx.rank, ctx.rank, 50)]
    got = yield from sparse_alltoall(ctx, payloads, tag_label="x")
    return sorted(m.payload for m in got)


def test_contention_slows_the_same_program_down():
    flat = Machine(8).run(_pairwise_exchange)
    contended = Machine(
        8, network=Network(model="contended", node_size=4)
    ).run(_pairwise_exchange)
    assert contended.values == flat.values  # same answers...
    assert contended.time > flat.time  # ...later arrivals
    assert isinstance(contended.network, NetworkStats)
    assert contended.network.queue_seconds > 0.0
    assert contended.engine.discipline == "des"


def test_intra_node_traffic_matches_alpha_beta_time():
    """A node-local exchange never touches a link: times are identical."""

    def local_pingpong(ctx):
        peer = ctx.rank ^ 1
        if ctx.rank % 2 == 0:
            ctx.send(peer, "ping", None, 5)
            yield from ctx.recv("pong")
        else:
            yield from ctx.recv("ping")
            ctx.send(peer, "pong", None, 5)
        return ctx.clock

    flat = Machine(4).run(local_pingpong)
    contended = Machine(4, network=Network(model="contended", node_size=4)).run(
        local_pingpong
    )
    assert contended.values == flat.values
    assert contended.time == flat.time
    assert contended.network.links_used == 0


def test_contended_run_is_deterministic():
    def run_once():
        res = Machine(8, network=Network(model="contended", node_size=2)).run(
            _pairwise_exchange
        )
        return res.time, res.events, res.network, res.values

    assert run_once() == run_once()


def test_sync_sends_is_noop_under_instant_delivery():
    def prog(ctx):
        steps = 0
        ctx.send((ctx.rank + 1) % ctx.num_pes, "t", None, 1)
        for _ in ctx.sync_sends():
            steps += 1
        yield from ctx.recv("t")
        return steps
        yield  # pragma: no cover

    res = Machine(3).run(prog)
    assert res.values == [0, 0, 0]


def test_deadlock_forensics_name_blocked_sync_sends():
    """A PE parked in sync_sends shows up as such in the diagnostic."""

    def prog(ctx):
        if ctx.rank == 0:
            # Fill the link, then wait for delivery that requires rank 1
            # to... never exist: rank 1 blocks forever first.
            ctx.send(2, "t", None, 10)
            yield from ctx.sync_sends()
            yield from ctx.recv("never")
        elif ctx.rank == 1:
            yield from ctx.recv("never")
        else:
            yield from ctx.recv("t")
            yield from ctx.recv("never")
        return None
        yield  # pragma: no cover

    with pytest.raises(DeadlockError) as err:
        Machine(4, network=Network(model="contended", node_size=1)).run(prog)
    msg = str(err.value)
    assert "exact deadlock" in msg
    assert "blocked on recv" in msg


def test_fingerprint_algorithms_run_on_contended_network():
    """The counting engines produce exact counts under contention too."""
    graph = gen.rmat(8, 8, seed=17)
    truth = edge_iterator(graph).triangles
    dist = distribute(graph, num_pes=4)
    for algorithm in ("ditric", "cetric"):
        program, args = _program_of(algorithm, dist)
        res = Machine(
            4, network=Network(model="contended", node_size=2)
        ).run(program, *args)
        assert _triangles_of(res.values[0]) == truth, algorithm
        assert res.time > 0.0
