"""Execute every code block of docs/TUTORIAL.md (docs cannot rot)."""

import re
from pathlib import Path

TUTORIAL = Path(__file__).parent.parent / "docs" / "TUTORIAL.md"


def _code_blocks(text: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_tutorial_exists_and_has_blocks():
    text = TUTORIAL.read_text()
    blocks = _code_blocks(text)
    assert len(blocks) >= 6


def test_tutorial_blocks_execute_in_order():
    text = TUTORIAL.read_text()
    namespace: dict = {}
    for i, block in enumerate(_code_blocks(text)):
        try:
            exec(compile(block, f"<tutorial block {i}>", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - diagnostic
            raise AssertionError(f"tutorial block {i} failed: {exc}\n{block}") from exc
