"""Cross-backend / cross-transport equivalence suite.

The bit-identity contract pinned end to end:

* **Kernel backends** (numpy, the reference ``pymerge`` merge loops,
  the cffi/C ``native`` kernels and the tuner-driven ``auto`` selector,
  plus numba when installed) must leave *every* simulated observable
  unchanged — counts, clocks, message/word totals, per-PE counters —
  because the dispatcher (including the fused
  ``batch_intersect_count_elements`` entry the enumeration/LCC paths
  use) computes all accounting before a backend runs.
* **Transports** (simulator, ``ProcessMachine`` with the shm pool,
  ``ProcessMachine`` spilling everything to pickle) must agree on
  counts, volumes, messages, ops, per-PE words, and the exact triangle
  *enumeration* (compared by sha256 of the gathered, lexsorted triple
  array).  Per-PE modelled clocks are exempt across transports — real
  delivery interleavings shift the last few per-message α charges — a
  caveat documented in ``net/parallel.py`` since the backend landed.

Matrix: 2 generators × 3 seeds, as required by ISSUE 9; backends that
need an unavailable toolchain (numba wheel, C compiler) drop out of the
matrix rather than failing it.
"""

import hashlib
import importlib.util

import numpy as np
import pytest
from backend_utils import register_pymerge

from repro.core.backends import set_backend, use_backend
from repro.core.engine import EngineConfig, counting_program
from repro.core.enumerate import enumerate_program, gather_all_triangles
from repro.core.native import native_available
from repro.graphs import distribute
from repro.graphs import generators as gen
from repro.net import Machine
from repro.net.parallel import ProcessMachine

P = 3
SEEDS = [1, 2, 3]
GENERATORS = {
    "rgg2d": lambda seed: gen.rgg2d(350, expected_edges=2600, seed=seed),
    "rmat": lambda seed: gen.rmat(8, 10, seed=seed),
}
CASES = [(g, s) for g in GENERATORS for s in SEEDS]


def _backend_matrix():
    """Every backend loadable in this environment, ``numpy`` first.

    ``auto`` is always present (it delegates to loadable backends), so
    the tuner-driven selection path is pinned even on numpy-only CI.
    """
    names = ["numpy", register_pymerge()]
    if importlib.util.find_spec("numba") is not None:
        names.append("numba")
    if native_available():
        names.append("native")
    names.append("auto")
    return names


@pytest.fixture(autouse=True)
def _reset_selection():
    yield
    set_backend(None)


def _dist(gen_name, seed):
    return distribute(GENERATORS[gen_name](seed), num_pes=P)


def _enum_sha(res) -> str:
    tri = np.ascontiguousarray(gather_all_triangles(res.values), dtype=np.int64)
    return hashlib.sha256(tri.tobytes()).hexdigest()


def _transport_observables(res):
    m = res.metrics
    return {
        "count": res.values[0].triangles_total,
        "total_volume": m.total_volume,
        "bottleneck_volume": m.bottleneck_volume,
        "total_messages": m.total_messages,
        "max_messages": m.max_messages_sent,
        "total_ops": m.total_ops,
        "words_sent": tuple(pe.words_sent for pe in m.per_pe),
        "messages_sent": tuple(pe.messages_sent for pe in m.per_pe),
        "local_ops": tuple(pe.local_ops for pe in m.per_pe),
    }


# ---------------------------------------------------------------------------
# Kernel backends: full bit-identity on the simulator
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("gen_name,seed", CASES)
def test_backends_bit_identical_on_simulator(gen_name, seed):
    dist = _dist(gen_name, seed)
    cfg = EngineConfig(contraction=True)
    baseline = None
    for name in _backend_matrix():
        with use_backend(name):
            res = Machine(P).run(counting_program, dist, cfg)
        summary = res.metrics.summary()  # includes simulated time
        observed = (res.values[0].triangles_total, summary)
        if baseline is None:
            baseline = observed
        assert observed == baseline, f"backend {name} diverged"


def test_backends_bit_identical_on_enumeration():
    """Enumeration drives the fused count+elements dispatcher: the sha
    covers the hit streams, the makespan the fused-path accounting."""
    dist = _dist("rgg2d", SEEDS[0])
    shas = set()
    for name in _backend_matrix():
        with use_backend(name):
            res = Machine(P).run(enumerate_program, dist, EngineConfig())
        shas.add((_enum_sha(res), res.metrics.makespan))
    assert len(shas) == 1


@pytest.mark.parametrize("gen_name", list(GENERATORS))
def test_backends_bit_identical_on_lcc(gen_name):
    """LCC exercises the fused dispatcher on both the local phase and
    the record-pair path, across Machine and ProcessMachine."""
    from repro.core.lcc import lcc_program

    dist = _dist(gen_name, SEEDS[0])
    cfg = EngineConfig(contraction=True)
    baseline = None
    for name in _backend_matrix():
        with use_backend(name):
            sim = Machine(P).run(lcc_program, dist, cfg)
            par = ProcessMachine(P).run(lcc_program, dist, cfg)
        lcc = np.concatenate([v.lcc for v in sim.values])
        observed = (
            lcc.tobytes(),
            sim.metrics.summary(),
            tuple(pe.words_sent for pe in par.metrics.per_pe),
        )
        np.testing.assert_array_equal(
            np.concatenate([v.lcc for v in par.values]), lcc, err_msg=name
        )
        if baseline is None:
            baseline = observed
        assert observed == baseline, f"backend {name} diverged on LCC"


# ---------------------------------------------------------------------------
# Transports: simulator vs shm pool vs forced-pickle processes
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("gen_name,seed", CASES)
def test_transports_agree_on_counts_and_accounting(gen_name, seed):
    dist = _dist(gen_name, seed)
    cfg = EngineConfig(contraction=True)
    sim = Machine(P).run(counting_program, dist, cfg)
    shm = ProcessMachine(P, shm=True).run(counting_program, dist, cfg)
    pickled = ProcessMachine(P, shm=False).run(counting_program, dist, cfg)
    ref = _transport_observables(sim)
    assert _transport_observables(shm) == ref
    assert _transport_observables(pickled) == ref
    # and the shm run actually exercised the pool
    assert shm.metrics.total_shm_frames > 0
    assert pickled.metrics.total_shm_frames == 0


@pytest.mark.parametrize("gen_name", list(GENERATORS))
def test_transports_agree_on_enumeration_sha(gen_name):
    dist = _dist(gen_name, SEEDS[0])
    cfg = EngineConfig()
    shas = {
        transport: _enum_sha(machine.run(enumerate_program, dist, cfg))
        for transport, machine in {
            "sim": Machine(P),
            "shm": ProcessMachine(P, shm=True),
            "pickle": ProcessMachine(P, shm=False),
        }.items()
    }
    assert len(set(shas.values())) == 1, shas
