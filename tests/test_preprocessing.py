"""Tests for ghost-degree exchange and distributed orientation."""

import numpy as np
import pytest

from repro.core.orientation import orient_by_degree
from repro.core.preprocessing import build_oriented, exchange_ghost_degrees
from repro.graphs import distribute
from repro.graphs import generators as gen
from repro.net import Machine


def _exchange_prog(ctx, dist, mode):
    lg = dist.view(ctx.rank)
    degs = yield from exchange_ghost_degrees(ctx, lg, mode=mode)
    return degs


@pytest.mark.parametrize("mode", ["dense", "sparse"])
@pytest.mark.parametrize("p", [1, 2, 3, 5])
def test_ghost_degrees_correct(mode, p, random_graph):
    g = random_graph
    dist = distribute(g, num_pes=p)
    res = Machine(p).run(_exchange_prog, dist, mode)
    for rank, degs in enumerate(res.values):
        lg = dist.view(rank)
        expected = g.degrees[lg.ghost_vertices]
        assert np.array_equal(degs, expected), (rank, mode)
        assert lg.ghost_degrees is degs


def test_exchange_rejects_bad_mode():
    g = gen.ring(6)
    dist = distribute(g, num_pes=2)
    with pytest.raises(ValueError):
        Machine(2).run(_exchange_prog, dist, "bogus")


def test_sparse_cheaper_than_dense_on_local_graph():
    """Few communication partners: sparse avoids the p-1 message tax."""
    g = gen.grid2d(16, 16)
    p = 8
    dist = distribute(g, num_pes=p)
    dense = Machine(p).run(_exchange_prog, dist, "dense")
    sparse = Machine(p).run(_exchange_prog, dist, "sparse")
    assert sparse.metrics.total_messages < dense.metrics.total_messages


def _orient_prog(ctx, dist, with_ghosts):
    lg = dist.view(ctx.rank)
    yield from exchange_ghost_degrees(ctx, lg)
    og = build_oriented(ctx, lg, with_ghosts=with_ghosts)
    return og


@pytest.mark.parametrize("p", [1, 2, 4])
def test_distributed_orientation_matches_sequential(p, random_graph):
    g = random_graph
    seq = orient_by_degree(g)
    dist = distribute(g, num_pes=p)
    res = Machine(p).run(_orient_prog, dist, False)
    for rank, og in enumerate(res.values):
        lg = dist.view(rank)
        for v in lg.owned_vertices():
            assert og.out_neighborhood(int(v)).tolist() == seq.neighbors(int(v)).tolist()


def test_orientation_requires_ghost_degrees():
    g = gen.ring(8)
    dist = distribute(g, num_pes=2)

    def prog(ctx):
        lg = dist.view(ctx.rank)
        with pytest.raises(RuntimeError):
            build_oriented(ctx, lg)
        return None
        yield  # pragma: no cover

    Machine(2).run(prog)


@pytest.mark.parametrize("p", [2, 3, 5])
def test_ghost_out_neighborhoods_restricted_and_oriented(p, random_graph):
    g = random_graph
    seq = orient_by_degree(g)
    dist = distribute(g, num_pes=p)
    res = Machine(p).run(_orient_prog, dist, True)
    for rank, og in enumerate(res.values):
        lg = dist.view(rank)
        for slot, ghost in enumerate(lg.ghost_vertices):
            got = og.ghost_out_neighborhood(slot)
            expected = [
                u for u in seq.neighbors(int(ghost)) if lg.vlo <= u < lg.vhi
            ]
            assert got.tolist() == expected


def test_ghost_neighborhood_access_requires_flag():
    g = gen.ring(8)
    dist = distribute(g, num_pes=2)
    res = Machine(2).run(_orient_prog, dist, False)
    with pytest.raises(RuntimeError):
        res.values[0].ghost_out_neighborhood(0)


def test_contracted_drops_exactly_local_arcs(random_graph):
    p = 4
    g = random_graph
    dist = distribute(g, num_pes=p)
    res = Machine(p).run(_orient_prog, dist, True)
    for rank, og in enumerate(res.values):
        lg = dist.view(rank)
        cxadj, cadj = og.contracted()
        assert np.all(~lg.is_local(cadj))  # only cut arcs remain
        # Counts add up: oriented = contracted + local arcs.
        local_arcs = int(np.count_nonzero(lg.is_local(og.oadjncy)))
        assert cadj.size == og.oadjncy.size - local_arcs


def test_order_keys_of_matches_degree_order(random_graph):
    p = 3
    g = random_graph
    dist = distribute(g, num_pes=p)
    res = Machine(p).run(_orient_prog, dist, False)
    n = g.num_vertices
    global_keys = g.degrees.astype(np.int64) * (n + 1) + np.arange(n)
    for rank, og in enumerate(res.values):
        lg = dist.view(rank)
        known = np.concatenate([lg.owned_vertices(), lg.ghost_vertices])
        if known.size:
            assert np.array_equal(og.order_keys_of(known), global_keys[known])


def test_out_degrees_property(random_graph):
    dist = distribute(random_graph, num_pes=2)
    res = Machine(2).run(_orient_prog, dist, False)
    for og in res.values:
        assert np.array_equal(og.out_degrees(), np.diff(og.oxadj))
