"""Round-trip tests for graph file IO."""

import io

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.io import (
    load,
    read_binary,
    read_edge_list,
    read_metis,
    write_binary,
    write_edge_list,
    write_metis,
)


def test_edge_list_roundtrip(tmp_path):
    g = gen.gnm(50, 200, seed=1)
    path = tmp_path / "g.el"
    write_edge_list(g, path)
    h = read_edge_list(path)
    assert np.array_equal(g.xadj, h.xadj)
    assert np.array_equal(g.adjncy, h.adjncy)
    assert h.name == "g"


def test_edge_list_comments_and_duplicates():
    text = "# comment\n% other comment\n0 1\n1 0\n1 2\n\n"
    g = read_edge_list(io.StringIO(text))
    assert g.num_edges == 2


def test_edge_list_malformed_line():
    with pytest.raises(ValueError):
        read_edge_list(io.StringIO("0\n"))


def test_metis_roundtrip(tmp_path):
    g = gen.complete_graph(6)
    path = tmp_path / "g.metis"
    write_metis(g, path)
    h = read_metis(path)
    assert np.array_equal(g.xadj, h.xadj)
    assert np.array_equal(g.adjncy, h.adjncy)


def test_metis_header_mismatch(tmp_path):
    path = tmp_path / "bad.metis"
    path.write_text("2 5\n2\n1\n")
    with pytest.raises(ValueError):
        read_metis(path)


def test_metis_wrong_line_count(tmp_path):
    path = tmp_path / "bad.metis"
    path.write_text("3 1\n2\n1\n")  # 3 vertices but only 2 lines
    with pytest.raises(ValueError):
        read_metis(path)


def test_metis_rejects_weighted(tmp_path):
    path = tmp_path / "w.metis"
    path.write_text("2 1 11\n2 5\n1 5\n")
    with pytest.raises(ValueError):
        read_metis(path)


def test_binary_roundtrip(tmp_path):
    g = gen.rmat(7, 8, seed=9)
    path = tmp_path / "g.npz"
    write_binary(g, path)
    h = read_binary(path)
    assert np.array_equal(g.xadj, h.xadj)
    assert np.array_equal(g.adjncy, h.adjncy)
    assert h.oriented == g.oriented


def test_binary_preserves_orientation_flag(tmp_path):
    from repro.core.orientation import orient_by_degree

    og = orient_by_degree(gen.ring(6))
    path = tmp_path / "o.npz"
    write_binary(og, path)
    h = read_binary(path)
    assert h.oriented


def test_load_dispatch(tmp_path):
    g = gen.ring(8)
    for name in ("a.el", "a.metis", "a.npz"):
        path = tmp_path / name
        if name.endswith(".el"):
            write_edge_list(g, path)
        elif name.endswith(".metis"):
            write_metis(g, path)
        else:
            write_binary(g, path)
        h = load(path)
        assert h.num_edges == g.num_edges


def test_empty_metis_rejected(tmp_path):
    path = tmp_path / "e.metis"
    path.write_text("\n%only comment\n")
    with pytest.raises(ValueError):
        read_metis(path)
