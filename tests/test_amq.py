"""Tests for the AMQ structures (Bloom, single-shot Bloom, hashing)."""

import numpy as np
import pytest

from repro.amq import (
    BloomFilter,
    SingleShotBloomFilter,
    false_positive_rate,
    hash_family,
    hash_to_range,
    mix64,
    optimal_num_hashes,
    optimal_rice_parameter,
    rice_encoded_bits,
)


# ---------------------------------------------------------------- hashing
def test_mix64_deterministic_and_seed_dependent():
    x = np.arange(100, dtype=np.int64)
    a = mix64(x, seed=1)
    b = mix64(x, seed=1)
    c = mix64(x, seed=2)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_mix64_avalanche_roughly_uniform():
    x = np.arange(10000, dtype=np.int64)
    h = mix64(x) % np.uint64(16)
    counts = np.bincount(h.astype(np.int64), minlength=16)
    assert counts.min() > 10000 / 16 * 0.8
    assert counts.max() < 10000 / 16 * 1.2


def test_hash_family_shape_and_independence():
    x = np.arange(50, dtype=np.int64)
    h = hash_family(x, 4, seed=3)
    assert h.shape == (4, 50)
    assert not np.array_equal(h[0], h[1])


def test_hash_to_range_bounds():
    x = np.arange(1000, dtype=np.int64)
    h = hash_to_range(x, 3, 37, seed=5)
    assert h.min() >= 0 and h.max() < 37
    with pytest.raises(ValueError):
        hash_to_range(x, 3, 0)


# ---------------------------------------------------------------- bloom
def test_bloom_no_false_negatives(rng):
    keys = rng.choice(10**6, size=500, replace=False)
    f = BloomFilter.for_elements(500, bits_per_element=8, seed=1)
    f.add(keys)
    assert np.all(f.query(keys))


def test_bloom_fpr_close_to_analytic(rng):
    n = 2000
    keys = np.arange(n, dtype=np.int64)
    f = BloomFilter.for_elements(n, bits_per_element=8, seed=2)
    f.add(keys)
    probe = np.arange(n, n + 20000, dtype=np.int64)
    measured = float(np.count_nonzero(f.query(probe))) / probe.size
    expected = f.expected_fpr()
    assert measured == pytest.approx(expected, rel=0.4, abs=0.01)


def test_bloom_empty_filter_rejects_everything():
    f = BloomFilter(1024, 3)
    assert not np.any(f.query(np.arange(100)))
    assert f.expected_fpr() == 0.0
    assert f.query(np.empty(0, dtype=np.int64)).size == 0


def test_bloom_storage_words():
    f = BloomFilter(640, 4)
    assert f.storage_words == 10


def test_bloom_parameter_validation():
    with pytest.raises(ValueError):
        BloomFilter(0, 1)
    with pytest.raises(ValueError):
        BloomFilter(64, 0)


def test_optimal_num_hashes():
    assert optimal_num_hashes(8.0) == round(8 * 0.6931)
    assert optimal_num_hashes(0.1) == 1


def test_false_positive_rate_limits():
    assert false_positive_rate(1000, 3, 0) == 0.0
    assert false_positive_rate(0, 3, 10) == 1.0
    # More bits -> lower FPR.
    assert false_positive_rate(10000, 5, 100) < false_positive_rate(1000, 5, 100)


def test_bloom_seed_changes_positions():
    keys = np.arange(100, dtype=np.int64)
    f1 = BloomFilter(4096, 3, seed=1)
    f2 = BloomFilter(4096, 3, seed=2)
    f1.add(keys)
    f2.add(keys)
    assert not np.array_equal(f1._words, f2._words)


# ---------------------------------------------------------------- ssbf
def test_ssbf_no_false_negatives(rng):
    keys = rng.choice(10**6, size=300, replace=False)
    f = SingleShotBloomFilter.for_elements(300, cells_per_element=16, seed=3)
    f.add(keys)
    assert np.all(f.query(keys))


def test_ssbf_fpr_close_to_density(rng):
    n = 1000
    f = SingleShotBloomFilter.for_elements(n, cells_per_element=16, seed=4)
    f.add(np.arange(n, dtype=np.int64))
    probe = np.arange(n, n + 20000, dtype=np.int64)
    measured = float(np.count_nonzero(f.query(probe))) / probe.size
    assert measured == pytest.approx(f.expected_fpr(), rel=0.4, abs=0.01)
    assert f.expected_fpr() < 0.08  # ~1/16


def test_ssbf_compressed_smaller_than_bloom_at_same_fpr(rng):
    """The Putze et al. point: near-entropy wire size."""
    n = 4000
    # Bloom at ~1% FPR needs ~9.6 bits/element.
    bloom = BloomFilter.for_elements(n, bits_per_element=10, seed=5)
    bloom.add(np.arange(n, dtype=np.int64))
    ssbf = SingleShotBloomFilter.for_elements(n, cells_per_element=100, seed=5)
    ssbf.add(np.arange(n, dtype=np.int64))
    assert ssbf.expected_fpr() <= 0.012
    assert ssbf.storage_words < bloom.storage_words


def test_ssbf_empty():
    f = SingleShotBloomFilter(64)
    assert not np.any(f.query(np.arange(10)))
    assert f.storage_words >= 1
    assert f.query(np.empty(0, dtype=np.int64)).size == 0


def test_ssbf_validation():
    with pytest.raises(ValueError):
        SingleShotBloomFilter(0)


# ---------------------------------------------------------------- rice
def test_rice_encoded_bits_empty():
    assert rice_encoded_bits(np.empty(0, dtype=np.int64), 2) == 0


def test_rice_encoded_bits_formula():
    pos = np.array([3, 10, 11], dtype=np.int64)
    # gaps: 3, 7, 1; k=1 -> unary sum = 1+3+0 = 4... plus 3*(k+1)=6
    assert rice_encoded_bits(pos, 1) == (3 >> 1) + (7 >> 1) + (1 >> 1) + 3 * 2


def test_optimal_rice_parameter_monotone():
    dense = optimal_rice_parameter(1000, 500)
    sparse = optimal_rice_parameter(100000, 500)
    assert sparse > dense
    assert optimal_rice_parameter(100, 0) == 0
