"""Direct unit tests for metrics, messages and cost-model helpers."""

import pytest

from repro.net.costmodel import CLOUD, LAN, SUPERMUC, MachineSpec
from repro.net.messages import HEADER_WORDS, Message
from repro.net.metrics import PEMetrics, RunMetrics


# ------------------------------------------------------------- costmodel
def test_message_time_formula():
    spec = MachineSpec(alpha=2.0, beta=0.5)
    assert spec.message_time(10) == pytest.approx(2.0 + 5.0)
    assert spec.message_time(0) == pytest.approx(2.0)


def test_compute_time_formula():
    spec = MachineSpec(flop_time=1e-6)
    assert spec.compute_time(1000) == pytest.approx(1e-3)


def test_preset_names():
    assert SUPERMUC.name == "supermuc-ng"
    assert LAN.name == "lan"
    assert CLOUD.name == "cloud"


def test_scaled_returns_new_instance():
    s = SUPERMUC.scaled(memory_words=10)
    assert s.memory_words == 10
    assert SUPERMUC.memory_words != 10  # frozen original untouched


# ------------------------------------------------------------- messages
def test_message_sequence_monotone():
    a = Message(0, 1, "t", None, 1, 0.0)
    b = Message(0, 1, "t", None, 1, 0.0)
    assert b.seq > a.seq


def test_header_words_constant():
    assert HEADER_WORDS == 2


# ------------------------------------------------------------- metrics
def _pe(rank, **kw):
    m = PEMetrics(rank=rank)
    for k, v in kw.items():
        setattr(m, k, v)
    return m


def test_note_buffer_tracks_high_water():
    m = PEMetrics(rank=0)
    m.note_buffer(10)
    m.note_buffer(5)
    m.note_buffer(20)
    assert m.peak_buffer_words == 20


def test_run_metrics_aggregations():
    rm = RunMetrics(
        per_pe=[
            _pe(0, clock=1.0, messages_sent=3, words_sent=10, local_ops=100),
            _pe(1, clock=2.5, messages_sent=7, words_sent=5, local_ops=50),
        ]
    )
    assert rm.num_pes == 2
    assert rm.makespan == 2.5
    assert rm.max_messages_sent == 7
    assert rm.bottleneck_volume == 10
    assert rm.total_volume == 15
    assert rm.total_messages == 10
    assert rm.total_ops == 150


def test_run_metrics_empty():
    rm = RunMetrics(per_pe=[])
    assert rm.makespan == 0.0
    assert rm.max_messages_sent == 0
    assert rm.bottleneck_volume == 0
    assert rm.phase_breakdown() == {}


def test_phase_breakdown_is_max_over_pes():
    a = PEMetrics(rank=0)
    a.phase_times["local"] = 3.0
    b = PEMetrics(rank=1)
    b.phase_times["local"] = 5.0
    b.phase_times["global"] = 1.0
    rm = RunMetrics(per_pe=[a, b])
    assert rm.phase_breakdown() == {"local": 5.0, "global": 1.0}


def test_summary_contains_phases():
    a = PEMetrics(rank=0)
    a.clock = 2.0
    a.phase_times["local"] = 2.0
    rm = RunMetrics(per_pe=[a])
    s = rm.summary()
    assert s["time"] == 2.0
    assert s["phase_local"] == 2.0
    assert "num_pes" in s and "bottleneck_volume" in s
