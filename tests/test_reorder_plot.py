"""Tests for vertex reordering utilities and the ASCII plot renderer."""

import numpy as np

from repro.analysis.plot import ascii_plot, plot_results
from repro.analysis.runner import RunResult
from repro.core.edge_iterator import edge_iterator
from repro.graphs import generators as gen
from repro.graphs import relabel
from repro.graphs.reorder import bfs_order, cut_fraction, degree_order, random_order


# ------------------------------------------------------------- reorder
def test_bfs_order_is_permutation(random_graph):
    perm = bfs_order(random_graph)
    assert np.array_equal(np.sort(perm), np.arange(random_graph.num_vertices))


def test_bfs_order_handles_disconnected():
    g = gen.disjoint_cliques(3, 4)
    perm = bfs_order(g)
    assert np.array_equal(np.sort(perm), np.arange(12))


def test_bfs_restores_locality_after_shuffle():
    base = gen.grid2d(24, 24)
    shuffled = relabel(base, random_order(base, seed=3))
    restored = relabel(shuffled, bfs_order(shuffled))
    p = 8
    assert cut_fraction(shuffled, p) > 0.5
    assert cut_fraction(restored, p) < 0.35
    # Counting is invariant under all of it.
    t = edge_iterator(base).triangles
    assert edge_iterator(shuffled).triangles == t
    assert edge_iterator(restored).triangles == t


def test_random_order_deterministic_per_seed(random_graph):
    a = random_order(random_graph, seed=5)
    b = random_order(random_graph, seed=5)
    c = random_order(random_graph, seed=6)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_degree_order_sorts_degrees(random_graph):
    perm = degree_order(random_graph)
    relabeled = relabel(random_graph, perm)
    d = relabeled.degrees
    assert np.all(np.diff(d) >= 0)


def test_degree_order_numbering_matches_total_order():
    g = gen.star(8)
    perm = degree_order(g)
    # Hub (highest degree) gets the last id.
    assert perm[0] == g.num_vertices - 1


def test_cut_fraction_bounds(random_graph):
    f = cut_fraction(random_graph, 4)
    assert 0.0 <= f <= 1.0
    assert cut_fraction(gen.disjoint_cliques(4, 4), 4) == 0.0


def test_cut_fraction_empty():
    from repro.graphs import empty_graph

    assert cut_fraction(empty_graph(5), 2) == 0.0


# ------------------------------------------------------------- plot
def test_ascii_plot_renders_all_series():
    out = ascii_plot(
        {"a": [(1, 1.0), (2, 0.5), (4, 0.25)], "b": [(1, 2.0), (4, 2.0)]},
        title="demo",
    )
    assert "demo" in out
    assert "o a" in out and "x b" in out
    assert "log-log" in out


def test_ascii_plot_skips_failures_and_empty():
    out = ascii_plot({"a": [(1, None), (2, 1.0)]})
    assert "o a" in out
    assert "(no data)" in ascii_plot({"a": [(1, None)]})


def test_ascii_plot_single_point():
    out = ascii_plot({"only": [(4, 3.0)]})
    assert "o only" in out


def test_plot_results_from_runresults():
    rows = [
        RunResult("ditric", "g", 2, 5, 0.5),
        RunResult("ditric", "g", 4, 5, 0.3),
        RunResult("tric", "g", 2, None, None, failed="out-of-memory"),
        RunResult("tric", "g", 4, 5, 0.9),
    ]
    out = plot_results(rows, "time", title="sweep")
    assert "sweep" in out
    assert "ditric" in out and "tric" in out


def test_plot_overlapping_points_marked():
    out = ascii_plot({"a": [(1, 1.0)], "b": [(1, 1.0)]})
    assert "*" in out  # collision marker
