"""Tests for distributed triangle enumeration (Section IV-E)."""

import numpy as np
import pytest

from repro.core.edge_iterator import triangle_edges
from repro.core.engine import EngineConfig
from repro.core.enumerate import enumerate_program, gather_all_triangles
from repro.graphs import distribute
from repro.graphs import generators as gen
from repro.net import Machine


def _sequential_sorted(g):
    tri = triangle_edges(g)
    if tri.size == 0:
        return tri
    order = np.lexsort((tri[:, 2], tri[:, 1], tri[:, 0]))
    return tri[order]


@pytest.mark.parametrize("contraction", [True, False])
@pytest.mark.parametrize("p", [1, 2, 3, 6])
def test_enumeration_matches_sequential(p, contraction, random_graph):
    g = random_graph
    expected = _sequential_sorted(g)
    dist = distribute(g, num_pes=p)
    res = Machine(p).run(
        enumerate_program, dist, EngineConfig(contraction=contraction)
    )
    got = gather_all_triangles(res.values)
    assert np.array_equal(got, expected)
    assert res.values[0].total == expected.shape[0]


def test_each_triangle_found_exactly_once():
    g = gen.complete_graph(9)
    dist = distribute(g, num_pes=3)
    res = Machine(3).run(enumerate_program, dist)
    got = gather_all_triangles(res.values)
    # No duplicates across PEs.
    assert np.unique(got, axis=0).shape[0] == got.shape[0] == 84


def test_enumeration_rows_are_real_triangles(random_graph):
    dist = distribute(random_graph, num_pes=4)
    res = Machine(4).run(enumerate_program, dist)
    got = gather_all_triangles(res.values)
    for a, b, c in got[:30]:
        assert random_graph.has_edge(int(a), int(b))
        assert random_graph.has_edge(int(b), int(c))
        assert random_graph.has_edge(int(a), int(c))


def test_enumeration_empty_graph():
    from repro.graphs import empty_graph

    dist = distribute(empty_graph(6), num_pes=2)
    res = Machine(2).run(enumerate_program, dist)
    assert gather_all_triangles(res.values).shape == (0, 3)
    assert res.values[0].total == 0


def test_enumeration_with_indirection():
    g = gen.rgg2d(400, expected_edges=3200, seed=5)
    expected = _sequential_sorted(g)
    dist = distribute(g, num_pes=9)
    res = Machine(9).run(
        enumerate_program, dist, EngineConfig(contraction=True, indirect=True)
    )
    assert np.array_equal(gather_all_triangles(res.values), expected)
