"""Tests for the degree-based total order and graph orientation."""

import numpy as np
import pytest

from repro.core.ordering import DegreeOrder, degree_order_keys, precedes
from repro.core.orientation import is_acyclic_orientation, orient, orient_by_degree, out_neighborhoods
from repro.graphs import generators as gen


def test_precedes_degree_then_id():
    assert precedes(1, 5, 2, 3)  # lower degree wins
    assert precedes(2, 3, 2, 5)  # tie broken by id
    assert not precedes(2, 5, 2, 3)


def test_degree_order_keys_consistent_with_precedes(rng):
    degs = rng.integers(0, 20, size=30)
    ids = np.arange(30)
    keys = degree_order_keys(degs, ids)
    for _ in range(200):
        i, j = rng.integers(0, 30, size=2)
        if i == j:
            continue
        assert (keys[i] < keys[j]) == precedes(degs[i], i, degs[j], j)


def test_degree_order_is_total(random_graph):
    order = DegreeOrder.from_degrees(random_graph.degrees)
    assert np.unique(order.keys).size == order.num_vertices


def test_rank_permutation_sorts_keys():
    order = DegreeOrder.from_degrees(np.array([5, 1, 3, 1]))
    perm = order.rank_permutation()
    # vertex 1 (deg 1, lowest id) first, then 3, then 2, then 0
    assert perm.tolist() == [3, 0, 2, 1]


def test_orientation_halves_arcs(random_graph):
    og = orient_by_degree(random_graph)
    assert og.oriented
    assert og.num_arcs == random_graph.num_edges
    assert og.check_sorted()


def test_orientation_is_acyclic(random_graph):
    og = orient_by_degree(random_graph)
    assert is_acyclic_orientation(og)


def test_is_acyclic_rejects_undirected_input():
    with pytest.raises(ValueError):
        is_acyclic_orientation(gen.ring(4))


def test_orientation_reduces_max_outdegree_on_star():
    """Degree orientation points edges at the hub: its out-degree is 0."""
    g = gen.star(50)
    og = orient_by_degree(g)
    assert og.degree(0) == 0
    assert np.all(og.degrees[1:] == 1)


def test_orient_rejects_oriented_input():
    og = orient_by_degree(gen.ring(5))
    with pytest.raises(ValueError):
        orient_by_degree(og)


def test_orient_rejects_size_mismatch():
    order = DegreeOrder.from_degrees(np.array([1, 1]))
    with pytest.raises(ValueError):
        orient(gen.ring(5), order)


def test_out_neighborhoods_idempotent_on_oriented():
    og = orient_by_degree(gen.complete_graph(5))
    xadj, adjncy = out_neighborhoods(og)
    assert xadj is og.xadj
    assert adjncy is og.adjncy


def test_out_degree_bound():
    """Degree orientation bounds out-degree by O(sqrt(m))."""
    g = gen.rmat(11, 16, seed=4)
    og = orient_by_degree(g)
    bound = 3 * int(np.sqrt(2 * g.num_edges)) + 1
    assert og.max_degree() <= bound


def test_every_edge_oriented_exactly_once(random_graph):
    og = orient_by_degree(random_graph)
    oriented = set(map(tuple, og.edges()))
    undirected = set(map(tuple, random_graph.undirected_edges()))
    covered = {(min(u, v), max(u, v)) for u, v in oriented}
    assert covered == undirected
