"""Tests for approximate counting: AMQ global phase, DOULION, colorful."""

import numpy as np
import pytest

from repro.core.approx import amq_cetric_program, colorful, doulion
from repro.core.edge_iterator import edge_iterator
from repro.core.engine import EngineConfig
from repro.graphs import distribute
from repro.graphs import generators as gen
from repro.net import Machine


@pytest.fixture(scope="module")
def skewed_graph():
    return gen.rmat(9, 12, seed=17)


@pytest.fixture(scope="module")
def skewed_truth(skewed_graph):
    return edge_iterator(skewed_graph).triangles


@pytest.mark.parametrize("kind,budget", [("bloom", 8.0), ("bloom", 16.0), ("ssbf", 16.0)])
def test_amq_estimate_close(kind, budget, skewed_graph, skewed_truth):
    dist = distribute(skewed_graph, num_pes=6)
    res = Machine(6).run(amq_cetric_program, dist, amq_kind=kind, budget=budget)
    est = res.values[0].estimate_total
    assert est == pytest.approx(skewed_truth, rel=0.05)


def test_amq_local_part_is_exact(skewed_graph):
    dist = distribute(skewed_graph, num_pes=4)
    res = Machine(4).run(amq_cetric_program, dist, amq_kind="bloom", budget=8.0)
    exact = Machine(4).run(
        __import__("repro.core.engine", fromlist=["counting_program"]).counting_program,
        dist,
        EngineConfig(contraction=True),
    )
    assert sum(v.exact_local for v in res.values) == sum(
        v.local_count for v in exact.values
    )


def test_amq_uncorrected_overestimates(skewed_graph, skewed_truth):
    """Without bias correction, false positives inflate the count."""
    dist = distribute(skewed_graph, num_pes=6)
    raw = Machine(6).run(
        amq_cetric_program, dist, amq_kind="bloom", budget=4.0, correct_bias=False
    ).values[0].estimate_total
    corrected = Machine(6).run(
        amq_cetric_program, dist, amq_kind="bloom", budget=4.0, correct_bias=True
    ).values[0].estimate_total
    assert raw >= skewed_truth  # no false negatives, only inflation
    assert abs(corrected - skewed_truth) <= abs(raw - skewed_truth)


def test_amq_reduces_volume_vs_exact(skewed_graph):
    from repro.core.engine import counting_program

    p = 6
    dist = distribute(skewed_graph, num_pes=p)
    exact_vol = Machine(p).run(
        counting_program, dist, EngineConfig(contraction=True)
    ).metrics.bottleneck_volume
    amq_vol = Machine(p).run(
        amq_cetric_program, dist, amq_kind="bloom", budget=4.0
    ).metrics.bottleneck_volume
    assert amq_vol < exact_vol


def test_amq_requires_contraction(skewed_graph):
    dist = distribute(skewed_graph, num_pes=2)
    with pytest.raises(ValueError):
        Machine(2).run(
            amq_cetric_program, dist, config=EngineConfig(contraction=False)
        )


def test_amq_rejects_unknown_kind(skewed_graph):
    dist = distribute(skewed_graph, num_pes=2)
    with pytest.raises(ValueError):
        Machine(2).run(amq_cetric_program, dist, amq_kind="cuckoo")


def test_amq_exact_when_no_type3():
    g = gen.disjoint_cliques(3, 6)
    truth = edge_iterator(g).triangles
    dist = distribute(g, num_pes=3)
    res = Machine(3).run(amq_cetric_program, dist)
    assert res.values[0].estimate_total == pytest.approx(truth)
    assert all(v.approx_remote == 0.0 for v in res.values)


# ---------------------------------------------------------------- sampling
def test_doulion_q1_is_exact(skewed_graph, skewed_truth):
    res = doulion(skewed_graph, 1.0, seed=1)
    assert res.estimate == skewed_truth
    assert res.reduced_edges == skewed_graph.num_edges


def test_doulion_unbiased_over_seeds(skewed_graph, skewed_truth):
    estimates = [doulion(skewed_graph, 0.6, seed=s).estimate for s in range(12)]
    mean = float(np.mean(estimates))
    assert mean == pytest.approx(skewed_truth, rel=0.15)


def test_doulion_reduces_edges(skewed_graph):
    res = doulion(skewed_graph, 0.3, seed=2)
    assert res.reduced_edges < 0.4 * skewed_graph.num_edges


def test_doulion_validates_q(skewed_graph):
    with pytest.raises(ValueError):
        doulion(skewed_graph, 0.0)
    with pytest.raises(ValueError):
        doulion(skewed_graph, 1.5)


def test_colorful_one_color_is_exact(skewed_graph, skewed_truth):
    res = colorful(skewed_graph, 1, seed=1)
    assert res.estimate == skewed_truth


def test_colorful_unbiased_over_seeds(skewed_graph, skewed_truth):
    estimates = [colorful(skewed_graph, 3, seed=s).estimate for s in range(16)]
    mean = float(np.mean(estimates))
    assert mean == pytest.approx(skewed_truth, rel=0.2)


def test_colorful_validates_colors(skewed_graph):
    with pytest.raises(ValueError):
        colorful(skewed_graph, 0)


def test_sampling_accepts_custom_counter(skewed_graph):
    from repro.core.edge_iterator import matrix_count

    res = doulion(skewed_graph, 0.5, seed=3, counter=matrix_count)
    res2 = doulion(skewed_graph, 0.5, seed=3)
    assert res.estimate == res2.estimate
