"""Tests for the public facade and the command-line interface."""

import numpy as np
import pytest

from repro import count_triangles, local_clustering_coefficients
from repro.cli import build_parser, main, parse_graph_spec
from repro.core.edge_iterator import edge_iterator
from repro.core.lcc import lcc_sequential
from repro.graphs import generators as gen


@pytest.fixture(scope="module")
def g():
    return gen.rgg2d(500, expected_edges=4000, seed=30)


# ---------------------------------------------------------------- api
def test_count_triangles_default(g):
    res = count_triangles(g, num_pes=4)
    assert res.algorithm == "cetric"
    assert res.triangles == edge_iterator(g).triangles


def test_count_triangles_sequential(g):
    res = count_triangles(g, algorithm="sequential")
    assert res.triangles == edge_iterator(g).triangles


def test_count_triangles_all_distributed(g):
    truth = edge_iterator(g).triangles
    for algo in ("ditric", "ditric2", "cetric2", "tric", "havoqgt"):
        assert count_triangles(g, algorithm=algo, num_pes=3).triangles == truth


def test_lcc_facade_sequential_and_distributed(g):
    seq = local_clustering_coefficients(g)
    dist = local_clustering_coefficients(g, num_pes=5)
    assert np.allclose(seq, lcc_sequential(g))
    assert np.allclose(dist, seq)


# ---------------------------------------------------------------- cli
def test_parse_graph_spec_generators():
    assert parse_graph_spec("rgg2d:256").num_vertices == 256
    assert parse_graph_spec("gnm:128:7").num_vertices == 128
    assert parse_graph_spec("rmat:6").num_vertices == 64
    assert parse_graph_spec("rhg:200").num_vertices == 200


def test_parse_graph_spec_dataset():
    g = parse_graph_spec("dataset:europe:0.2")
    assert g.name == "europe"


def test_parse_graph_spec_file(tmp_path):
    from repro.graphs.io import write_edge_list

    path = tmp_path / "t.el"
    write_edge_list(gen.ring(5), path)
    assert parse_graph_spec(str(path)).num_edges == 5


def test_parse_graph_spec_errors():
    with pytest.raises(ValueError):
        parse_graph_spec("dataset")
    with pytest.raises(ValueError):
        parse_graph_spec("rgg2d")


def test_cli_count(capsys):
    rc = main(["count", "--graph", "gnm:256:3", "--algorithm", "ditric", "-p", "4"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "triangles" in out
    assert "bottleneck communication volume" in out


def test_cli_count_sequential(capsys):
    rc = main(["count", "--graph", "rmat:6", "--algorithm", "sequential"])
    assert rc == 0
    assert "triangles" in capsys.readouterr().out


def test_cli_lcc(capsys):
    rc = main(["lcc", "--graph", "gnm:128:3", "-p", "2"])
    assert rc == 0
    assert "mean LCC" in capsys.readouterr().out


def test_cli_sweep(capsys):
    rc = main(
        [
            "sweep",
            "--graph",
            "gnm:128:3",
            "--max-pes",
            "4",
            "--algorithms",
            "ditric,cetric",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "time [s]" in out
    assert "bottleneck communication volume" in out


def test_cli_datasets(capsys):
    rc = main(["datasets", "--scale", "0.05"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "live-journal" in out and "usa" in out


def test_cli_sweep_with_plot(capsys):
    rc = main(
        [
            "sweep",
            "--graph",
            "gnm:128:3",
            "--max-pes",
            "4",
            "--algorithms",
            "ditric,cetric",
            "--plot",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "log-log" in out
    assert "legend:" in out


def test_cli_verify(capsys):
    rc = main(
        ["verify", "--graph", "gnm:128:3", "-p", "3", "--algorithms", "ditric,cetric"]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "oracle triangle count" in out
    assert out.count(": ok") == 2


def test_cli_types(capsys):
    rc = main(["types", "--graph", "rgg2d:256", "--min-pes", "2", "--max-pes", "8"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "type1" in out and "local %" in out
    assert out.count("%") >= 3  # one row per p in {2, 4, 8}


def test_parser_has_all_subcommands():
    parser = build_parser()
    text = parser.format_help()
    for sub in ("count", "lcc", "sweep", "types", "verify", "datasets"):
        assert sub in text
