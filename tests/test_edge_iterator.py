"""Tests for the sequential counters (Algorithm 1 and oracles)."""

import numpy as np

from repro.core.edge_iterator import (
    edge_iterator,
    edge_iterator_per_vertex,
    matrix_count,
    triangle_edges,
)
from repro.core.wedges import (
    global_clustering_coefficient,
    oriented_wedges,
    wedge_count,
    wedges_per_vertex,
)
from repro.graphs import generators as gen


def test_known_counts(known_graph):
    label, g, expected = known_graph
    assert edge_iterator(g).triangles == expected, label
    assert matrix_count(g) == expected, label


def test_oracles_agree_on_random(random_graph):
    assert edge_iterator(random_graph).triangles == matrix_count(random_graph)


def test_matches_networkx(random_graph):
    import networkx as nx

    expected = sum(nx.triangles(random_graph.to_networkx()).values()) // 3
    assert edge_iterator(random_graph).triangles == expected


def test_accepts_oriented_input():
    from repro.core.orientation import orient_by_degree

    g = gen.complete_graph(7)
    assert edge_iterator(orient_by_degree(g)).triangles == 35


def test_intersection_ops_positive_and_bounded():
    g = gen.complete_graph(10)
    res = edge_iterator(g)
    assert res.intersection_ops > 0
    # merge cost is at most sum over arcs of (d+_u + d+_v) <= 2 m * max d+
    og_max = 9
    assert res.intersection_ops <= 2 * g.num_edges * og_max


def test_per_vertex_sums_to_three_triangles(known_graph):
    label, g, expected = known_graph
    delta, res = edge_iterator_per_vertex(g)
    assert res.triangles == expected, label
    assert delta.sum() == 3 * expected, label


def test_per_vertex_matches_networkx(random_graph):
    import networkx as nx

    delta, _ = edge_iterator_per_vertex(random_graph)
    nx_tri = nx.triangles(random_graph.to_networkx())
    assert delta.tolist() == [nx_tri[v] for v in range(random_graph.num_vertices)]


def test_triangle_enumeration_complete():
    g = gen.complete_graph(5)
    tri = triangle_edges(g)
    assert tri.shape == (10, 3)
    # Each row ascending, all rows distinct.
    assert np.all(tri[:, 0] < tri[:, 1]) and np.all(tri[:, 1] < tri[:, 2])
    assert np.unique(tri, axis=0).shape[0] == 10


def test_triangle_enumeration_validates_edges(random_graph):
    tri = triangle_edges(random_graph)
    assert tri.shape[0] == edge_iterator(random_graph).triangles
    for a, b, c in tri[:50]:
        assert random_graph.has_edge(int(a), int(b))
        assert random_graph.has_edge(int(b), int(c))
        assert random_graph.has_edge(int(a), int(c))


def test_empty_and_trivial_graphs():
    from repro.graphs import empty_graph

    assert edge_iterator(empty_graph(0)).triangles == 0
    assert edge_iterator(empty_graph(5)).triangles == 0
    assert matrix_count(empty_graph(5)) == 0


# ------------------------------------------------------------- wedges
def test_wedge_count_star():
    g = gen.star(6)  # hub degree 5 -> C(5,2)=10 wedges
    assert wedge_count(g) == 10
    assert wedges_per_vertex(g).tolist() == [10, 0, 0, 0, 0, 0]


def test_wedge_count_matches_formula(random_graph):
    d = random_graph.degrees
    assert wedge_count(random_graph) == int((d * (d - 1) // 2).sum())


def test_oriented_wedges_smaller_than_undirected(random_graph):
    assert oriented_wedges(random_graph) <= wedge_count(random_graph)


def test_wedges_reject_oriented():
    from repro.core.orientation import orient_by_degree
    import pytest

    with pytest.raises(ValueError):
        wedge_count(orient_by_degree(gen.ring(5)))


def test_global_clustering_coefficient():
    assert global_clustering_coefficient(gen.complete_graph(6)) == 1.0
    assert global_clustering_coefficient(gen.star(5)) == 0.0
    assert global_clustering_coefficient(gen.path(3)) == 0.0


def test_gcc_with_precomputed_triangles():
    g = gen.wheel(9)
    t = edge_iterator(g).triangles
    assert global_clustering_coefficient(g, triangles=t) == 3.0 * t / wedge_count(g)
