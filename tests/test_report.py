"""Tests for the quick evaluation report generator."""

import pytest

from repro.analysis.report import generate_report
from repro.cli import main


@pytest.fixture(scope="module")
def report_text():
    return generate_report(scale=0.05, pe_counts=(2, 4), datasets=("europe",))


def test_report_structure(report_text):
    assert report_text.startswith("# repro quick evaluation report")
    assert "## Dataset stand-ins" in report_text
    assert "## Strong scaling on europe" in report_text
    assert "## Phase breakdown" in report_text
    assert "Triangle types" in report_text
    assert "generated in" in report_text


def test_report_contains_metrics(report_text):
    assert "bottleneck_volume" in report_text
    assert "transitivity" in report_text
    assert "doulion" in report_text


def test_report_rejects_unknown_dataset():
    with pytest.raises(KeyError):
        generate_report(scale=0.05, datasets=("atlantis",))


def test_report_cli_to_file(tmp_path, capsys):
    out = tmp_path / "report.md"
    rc = main(["report", "--scale", "0.05", "--pes", "2", "-o", str(out)])
    assert rc == 0
    assert "written to" in capsys.readouterr().out
    assert out.read_text().startswith("# repro quick evaluation report")


def test_report_cli_stdout(capsys):
    rc = main(["report", "--scale", "0.05", "--pes", "2"])
    assert rc == 0
    assert "# repro quick evaluation report" in capsys.readouterr().out
