"""Cross-cutting integration matrix: partitions × orders × algorithms."""

import numpy as np
import pytest

from repro.analysis.runner import ALGORITHMS, run_algorithm
from repro.core.edge_iterator import edge_iterator
from repro.core.engine import EngineConfig, counting_program
from repro.graphs import (
    cost_balanced_partition,
    distribute,
    partition_by_edges,
    relabel,
)
from repro.graphs import generators as gen
from repro.graphs.reorder import bfs_order, degree_order, random_order
from repro.net import Machine, MachineSpec


@pytest.fixture(scope="module")
def rgg3d_graph():
    return gen.rgg3d(800, expected_edges=8000, seed=31)


def test_all_algorithms_on_rgg3d(rgg3d_graph):
    truth = edge_iterator(rgg3d_graph).triangles
    for algo in ALGORITHMS:
        if algo == "sequential":
            continue
        res = run_algorithm(rgg3d_graph, algo, num_pes=5)
        assert res.triangles == truth, algo


def test_rgg3d_is_local_family(rgg3d_graph):
    """RGG3D behaves like RGG2D: contraction pays in volume."""
    dist = distribute(rgg3d_graph, num_pes=8)
    d = run_algorithm(dist, "ditric")
    c = run_algorithm(dist, "cetric")
    assert c.bottleneck_volume < d.bottleneck_volume


@pytest.mark.parametrize("algo", ["ditric", "cetric", "tric", "havoqgt"])
def test_edge_balanced_partition_all_algorithms(algo):
    g = gen.rmat(9, 16, seed=32)
    truth = edge_iterator(g).triangles
    part = partition_by_edges(g, 6)
    dist = distribute(g, partition=part)
    assert run_algorithm(dist, algo).triangles == truth


@pytest.mark.parametrize("algo", ["ditric", "cetric"])
def test_cost_balanced_partition_all_programs(algo):
    g = gen.rhg(700, avg_degree=12, seed=33)
    truth = edge_iterator(g).triangles
    part = cost_balanced_partition(g, 5)
    dist = distribute(g, partition=part)
    assert run_algorithm(dist, algo).triangles == truth


@pytest.mark.parametrize(
    "order_fn", [bfs_order, lambda g: random_order(g, seed=2), degree_order],
    ids=["bfs", "random", "degree"],
)
def test_counting_invariant_under_reordering(order_fn):
    g = gen.rgg2d(500, expected_edges=4000, seed=34)
    truth = edge_iterator(g).triangles
    h = relabel(g, order_fn(g))
    for algo in ("ditric", "cetric", "havoqgt"):
        assert run_algorithm(h, algo, num_pes=4).triangles == truth, algo


def test_degree_relabel_equalizes_tric_and_degree_orientation():
    """After degree-order relabeling, vertex-ID order *is* the degree
    order, so TriC's ID orientation does the same work as DITRIC's
    degree orientation — isolating orientation as TriC's handicap."""
    g = gen.rhg(1500, avg_degree=16, gamma=2.6, seed=35)
    relabeled = relabel(g, degree_order(g))
    p = 4
    dist_orig = distribute(g, num_pes=p)
    dist_rel = distribute(relabeled, num_pes=p)
    ops_tric_orig = run_algorithm(dist_orig, "tric").total_ops
    ops_tric_rel = run_algorithm(dist_rel, "tric").total_ops
    ops_ditric_rel = run_algorithm(dist_rel, "ditric").total_ops
    # The relabel fixes most of TriC's work blow-up...
    assert ops_tric_rel < 0.7 * ops_tric_orig
    # ... bringing it within a modest factor of DITRIC's.
    assert ops_tric_rel < 1.5 * ops_ditric_rel


def test_lcc_and_kcore_with_empty_pes():
    from repro.core.kcore import kcore_program
    from repro.core.lcc import lcc_program, lcc_sequential
    from repro.graphs.stats import core_numbers

    g = gen.wheel(9)  # 9 vertices, 12 PEs -> empty PEs exist
    dist = distribute(g, num_pes=12)
    lcc_res = Machine(12).run(lcc_program, dist, EngineConfig(contraction=True))
    got_lcc = np.concatenate([v.lcc for v in lcc_res.values])
    assert np.allclose(got_lcc, lcc_sequential(g))
    core_res = Machine(12).run(kcore_program, dist)
    got_core = np.concatenate([v.cores for v in core_res.values])
    assert np.array_equal(got_core, core_numbers(g))


def test_makespan_monotone_in_network_constants():
    g = gen.gnm(400, 4000, seed=36)
    dist = distribute(g, num_pes=6)
    base = MachineSpec(alpha=1e-6, beta=1e-10, flop_time=1e-9)
    slower_alpha = base.scaled(alpha=1e-4)
    slower_beta = base.scaled(beta=1e-7)
    t_base = Machine(6, base).run(counting_program, dist, EngineConfig()).metrics.makespan
    t_alpha = Machine(6, slower_alpha).run(
        counting_program, dist, EngineConfig()
    ).metrics.makespan
    t_beta = Machine(6, slower_beta).run(
        counting_program, dist, EngineConfig()
    ).metrics.makespan
    assert t_alpha > t_base
    assert t_beta > t_base


def test_deterministic_metrics_across_runs():
    g = gen.rmat(8, 8, seed=37)
    dist = distribute(g, num_pes=4)
    a = Machine(4).run(counting_program, dist, EngineConfig(indirect=True))
    b = Machine(4).run(counting_program, dist, EngineConfig(indirect=True))
    assert a.metrics.makespan == b.metrics.makespan
    assert a.metrics.summary() == b.metrics.summary()


def test_two_pe_world_and_singleton_vertices():
    from repro.graphs import from_edges

    # Vertex 2 is isolated; edges hug the partition boundary.
    g = from_edges(np.array([[0, 3], [1, 3], [0, 1]]), num_vertices=5)
    truth = edge_iterator(g).triangles
    for algo in ("ditric", "cetric", "tric", "havoqgt"):
        assert run_algorithm(g, algo, num_pes=2).triangles == truth == 1
