"""Integration tests: every engine variant against sequential truth."""

import pytest

from repro.core.edge_iterator import edge_iterator
from repro.core.engine import EngineConfig, counting_program
from repro.graphs import distribute
from repro.graphs import generators as gen
from repro.net import Machine

CONFIGS = {
    "naive": EngineConfig(aggregate=False, surrogate=False),
    "naive-aggregated": EngineConfig(aggregate=True, surrogate=False),
    "ditric": EngineConfig(),
    "ditric2": EngineConfig(indirect=True),
    "cetric": EngineConfig(contraction=True),
    "cetric2": EngineConfig(contraction=True, indirect=True),
}


@pytest.mark.parametrize("config_name", CONFIGS)
@pytest.mark.parametrize("p", [1, 2, 3, 5, 8])
def test_all_variants_correct_on_known(config_name, p, known_graph):
    label, g, expected = known_graph
    dist = distribute(g, num_pes=p)
    res = Machine(p).run(counting_program, dist, CONFIGS[config_name])
    assert res.values[0].triangles_total == expected, label
    # All PEs agree on the reduced total.
    assert len({v.triangles_total for v in res.values}) == 1


@pytest.mark.parametrize("config_name", CONFIGS)
@pytest.mark.parametrize("p", [2, 4, 7])
def test_all_variants_correct_on_random(config_name, p, random_graph):
    truth = edge_iterator(random_graph).triangles
    dist = distribute(random_graph, num_pes=p)
    res = Machine(p).run(counting_program, dist, CONFIGS[config_name])
    assert res.values[0].triangles_total == truth


def test_local_plus_remote_equals_total():
    g = gen.gnm(200, 1200, seed=5)
    truth = edge_iterator(g).triangles
    dist = distribute(g, num_pes=4)
    res = Machine(4).run(counting_program, dist, EngineConfig())
    assert sum(v.local_count + v.remote_count for v in res.values) == truth


def test_cetric_finds_type12_locally():
    """On a partition-aligned clique graph the global phase is empty."""
    g = gen.disjoint_cliques(4, 6)
    dist = distribute(g, num_pes=4)
    res = Machine(4).run(counting_program, dist, EngineConfig(contraction=True))
    assert res.values[0].triangles_total == 4 * 20
    for v in res.values:
        assert v.remote_count == 0
        assert v.records_sent == 0
    # And no neighborhood traffic at all (degree exchange only).
    assert res.metrics.total_volume <= 4 * 4 * 4  # tiny control traffic


def test_ditric_needs_messages_where_cetric_does_not():
    """Type-2 triangles straddling a boundary: DITRIC ships, CETRIC not."""
    # Path of triangles crossing the partition boundary.
    g = gen.triangular_lattice(4, 8)
    dist = distribute(g, num_pes=2)
    truth = edge_iterator(g).triangles
    r_dit = Machine(2).run(counting_program, dist, EngineConfig())
    r_cet = Machine(2).run(counting_program, dist, EngineConfig(contraction=True))
    assert r_dit.values[0].triangles_total == truth
    assert r_cet.values[0].triangles_total == truth
    assert sum(v.remote_count for v in r_cet.values) <= sum(
        v.remote_count for v in r_dit.values
    )


def test_contraction_reduces_bottleneck_volume_on_local_graph():
    g = gen.rgg2d(2000, expected_edges=24000, seed=7)
    p = 8
    dist = distribute(g, num_pes=p)
    vol_d = Machine(p).run(counting_program, dist, EngineConfig()).metrics.bottleneck_volume
    vol_c = Machine(p).run(
        counting_program, dist, EngineConfig(contraction=True)
    ).metrics.bottleneck_volume
    assert vol_c < vol_d


def test_contraction_costs_more_local_work():
    g = gen.gnm(1000, 16000, seed=8)
    p = 8
    dist = distribute(g, num_pes=p)
    ops_d = Machine(p).run(counting_program, dist, EngineConfig()).metrics.total_ops
    ops_c = Machine(p).run(
        counting_program, dist, EngineConfig(contraction=True)
    ).metrics.total_ops
    assert ops_c > ops_d


def test_aggregation_reduces_message_count():
    g = gen.gnm(600, 6000, seed=9)
    p = 8
    dist = distribute(g, num_pes=p)
    none = Machine(p).run(
        counting_program, dist, EngineConfig(aggregate=False, surrogate=False)
    )
    aggr = Machine(p).run(
        counting_program, dist, EngineConfig(aggregate=True, surrogate=False)
    )
    assert aggr.metrics.max_messages_sent < none.metrics.max_messages_sent / 3
    assert aggr.metrics.makespan < none.metrics.makespan


def test_surrogate_reduces_volume():
    g = gen.gnm(600, 6000, seed=10)
    p = 8
    dist = distribute(g, num_pes=p)
    no_sur = Machine(p).run(
        counting_program, dist, EngineConfig(aggregate=True, surrogate=False)
    )
    sur = Machine(p).run(counting_program, dist, EngineConfig())
    assert sur.metrics.total_volume < no_sur.metrics.total_volume


def test_threshold_keeps_buffer_linear():
    g = gen.gnm(600, 6000, seed=11)
    p = 4
    dist = distribute(g, num_pes=p)
    res = Machine(p).run(
        counting_program, dist, EngineConfig(threshold_factor=0.5)
    )
    max_arcs = max(v.num_local_arcs for v in dist.views)
    # High-water mark bounded by delta + one record.
    assert res.metrics.max_peak_buffer_words <= int(0.5 * max_arcs) + g.max_degree() + 3


def test_phase_labels_present():
    g = gen.gnm(200, 1000, seed=12)
    dist = distribute(g, num_pes=2)
    res = Machine(2).run(counting_program, dist, EngineConfig(contraction=True))
    phases = res.metrics.phase_breakdown()
    assert set(phases) >= {"preprocessing", "local", "contraction", "global"}


def test_config_threshold_words():
    cfg = EngineConfig(threshold_factor=2.0)
    assert cfg.threshold_words(1000) == 2000
    assert EngineConfig(aggregate=False).threshold_words(1000) == 0
    assert cfg.threshold_words(0) >= 16


def test_wrapper_programs_validate_config():
    from repro.core.cetric import cetric_program
    from repro.core.ditric import ditric_program

    g = gen.ring(6)
    dist = distribute(g, num_pes=2)
    with pytest.raises(ValueError):
        Machine(2).run(ditric_program, dist, EngineConfig(contraction=True))
    with pytest.raises(ValueError):
        Machine(2).run(cetric_program, dist, EngineConfig(contraction=False))


def test_wrapper_programs_run():
    from repro.core.cetric import cetric2_program, cetric_program
    from repro.core.ditric import ditric2_program, ditric_program
    from repro.core.naive_distributed import naive_program

    g = gen.wheel(13)
    truth = edge_iterator(g).triangles
    dist = distribute(g, num_pes=3)
    for prog in (ditric_program, ditric2_program, cetric_program, cetric2_program):
        assert Machine(3).run(prog, dist).values[0].triangles_total == truth
    assert Machine(3).run(naive_program, dist).values[0].triangles_total == truth
    assert (
        Machine(3).run(naive_program, dist, aggregate=True).values[0].triangles_total
        == truth
    )


def test_more_pes_than_vertices():
    g = gen.complete_graph(5)
    dist = distribute(g, num_pes=9)
    res = Machine(9).run(counting_program, dist, EngineConfig(contraction=True))
    assert res.values[0].triangles_total == 10


def test_empty_graph_all_variants():
    from repro.graphs import empty_graph

    g = empty_graph(10)
    dist = distribute(g, num_pes=3)
    for cfg in CONFIGS.values():
        res = Machine(3).run(counting_program, dist, cfg)
        assert res.values[0].triangles_total == 0
