"""Kernel backend registry: selection, fallback, and bit-identity.

The ``batch_intersect_*`` dispatcher owns validation, the side swap and
the charged ops; a backend only produces counts / hit streams.  These
tests pin the registry semantics (env/explicit selection, logged
fallback to numpy, third-party registration) and the contract itself —
every loadable backend must return byte-identical results on the same
pre-conditioned inputs.
"""

import importlib.util
import logging
import os

import numpy as np
import pytest
from backend_utils import register_pymerge

from repro.core import autotune, backends
from repro.core.backends import (
    available_backends,
    backend_status,
    get_backend,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.core.intersect import (
    batch_intersect_count,
    batch_intersect_count_elements,
    batch_intersect_elements,
    concat_xadj,
)
from repro.core.native import native_available

HAVE_NUMBA = importlib.util.find_spec("numba") is not None
HAVE_NATIVE = native_available()


@pytest.fixture(autouse=True)
def _reset_selection():
    yield
    set_backend(None)


def _random_batch(rng, k, bound, max_len):
    """k pairs of sorted-unique blocks over [0, bound)."""
    a_blocks = [
        np.unique(rng.integers(0, bound, size=rng.integers(0, max_len)))
        for _ in range(k)
    ]
    b_blocks = [
        np.unique(rng.integers(0, bound, size=rng.integers(0, max_len)))
        for _ in range(k)
    ]
    a = np.concatenate(a_blocks) if k else np.empty(0, dtype=np.int64)
    b = np.concatenate(b_blocks) if k else np.empty(0, dtype=np.int64)
    ax = concat_xadj([blk.size for blk in a_blocks])
    bx = concat_xadj([blk.size for blk in b_blocks])
    return a.astype(np.int64), ax, b.astype(np.int64), bx


# ---------------------------------------------------------------------------
# Registry semantics
# ---------------------------------------------------------------------------


def test_registry_lists_shipped_backends():
    names = available_backends()
    for shipped in ("numpy", "numba", "native", "auto"):
        assert shipped in names
    assert backend_status()["numpy"] == "ok"


def test_default_backend_is_numpy():
    assert get_backend().name == "numpy"


def test_unknown_backend_raises():
    with pytest.raises(KeyError, match="unknown kernel backend"):
        set_backend("no-such-backend")
    # and the selection was not clobbered by the failed attempt
    assert get_backend().name == "numpy"


def test_env_selection(monkeypatch):
    name = register_pymerge()
    monkeypatch.setenv(backends.ENV_BACKEND, name)
    assert get_backend().name == name


def test_explicit_selection_beats_env(monkeypatch):
    name = register_pymerge()
    monkeypatch.setenv(backends.ENV_BACKEND, name)
    set_backend("numpy")
    assert get_backend().name == "numpy"


def test_use_backend_restores_previous():
    name = register_pymerge()
    with use_backend(name):
        assert get_backend().name == name
    assert get_backend().name == "numpy"


@pytest.mark.skipif(HAVE_NUMBA, reason="numba installed: fallback never triggers")
def test_missing_numba_falls_back_with_logged_warning(caplog, monkeypatch):
    backends._FAILED.pop("numba", None)  # warn-once: reset for this test
    monkeypatch.delenv(backends.ENV_FALLBACK_WARNED, raising=False)
    with caplog.at_level(logging.WARNING, logger="repro.kernels"):
        backend = resolve_backend("numba")
    assert backend.name == "numpy"
    assert any("falling back to numpy" in r.message for r in caplog.records)
    # the warning is recorded in the environment for child processes
    assert "numba" in os.environ[backends.ENV_FALLBACK_WARNED].split(",")
    # selecting it process-wide degrades the same way instead of raising
    set_backend("numba")
    assert get_backend().name == "numpy"


def test_fallback_warning_suppressed_when_env_flag_set(caplog, monkeypatch):
    """A process whose parent already warned stays silent."""
    backends._FAILED.pop("nope-backend", None)
    backends.register_backend(
        "nope-backend", lambda: (_ for _ in ()).throw(ImportError("missing"))
    )
    try:
        monkeypatch.setenv(backends.ENV_FALLBACK_WARNED, "nope-backend")
        with caplog.at_level(logging.WARNING, logger="repro.kernels"):
            backend = resolve_backend("nope-backend")
        assert backend.name == "numpy"
        assert not any(
            "falling back to numpy" in r.message for r in caplog.records
        )
    finally:
        backends._LOADERS.pop("nope-backend", None)
        backends._FAILED.pop("nope-backend", None)


def test_third_backend_registration_and_dispatch():
    name = register_pymerge()
    a, ax, b, bx = _random_batch(np.random.default_rng(7), 13, 100, 12)
    base = batch_intersect_count(a, ax, b, bx, 100)
    with use_backend(name):
        assert get_backend().name == name
        got = batch_intersect_count(a, ax, b, bx, 100)
    np.testing.assert_array_equal(got.counts, base.counts)
    assert got.ops == base.ops


# ---------------------------------------------------------------------------
# Cross-backend bit-identity on the kernel contract
# ---------------------------------------------------------------------------


def _loadable_backends():
    names = ["numpy", register_pymerge()]
    if HAVE_NUMBA:
        names.append("numba")
    if HAVE_NATIVE:
        names.append("native")
    return names


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_backends_agree_on_random_batches(seed):
    rng = np.random.default_rng(seed)
    a, ax, b, bx = _random_batch(rng, 40, 1000, 30)
    results = {}
    for name in _loadable_backends():
        with use_backend(name):
            cnt = batch_intersect_count(a, ax, b, bx, 1000)
            pair, elem, ops = batch_intersect_elements(a, ax, b, bx, 1000)
        results[name] = (cnt.counts, cnt.ops, pair, elem, ops)
    ref = results["numpy"]
    for name, got in results.items():
        np.testing.assert_array_equal(got[0], ref[0], err_msg=name)
        assert got[1] == ref[1], name
        np.testing.assert_array_equal(got[2], ref[2], err_msg=name)
        np.testing.assert_array_equal(got[3], ref[3], err_msg=name)
        assert got[4] == ref[4], name


def test_backends_agree_on_lopsided_sides():
    """The dispatcher's side swap must be backend-invariant."""
    rng = np.random.default_rng(3)
    a, ax, b, bx = _random_batch(rng, 10, 200, 4)
    big, bigx, _, _ = _random_batch(rng, 10, 200, 60)
    for left in [(a, ax, big, bigx), (big, bigx, a, ax)]:
        ref = None
        for name in _loadable_backends():
            with use_backend(name):
                got = batch_intersect_count(*left, 200)
            if ref is None:
                ref = got
            np.testing.assert_array_equal(got.counts, ref.counts)
            assert got.ops == ref.ops


def test_empty_and_degenerate_batches_never_reach_backends():
    """The dispatcher's fast path answers k=0 / empty sides itself."""
    e = np.empty(0, dtype=np.int64)
    z = np.zeros(1, dtype=np.int64)
    for name in _loadable_backends():
        with use_backend(name):
            res = batch_intersect_count(e, z, e, z, 10)
            assert res.counts.size == 0 and res.ops == 0
            pair, elem, ops = batch_intersect_elements(e, z, e, z, 10)
            assert pair.size == 0 and elem.size == 0 and ops == 0


@pytest.mark.skipif(
    not HAVE_NUMBA, reason="numba wheel not installed (numpy-only environment)"
)
def test_numba_backend_loads():
    assert resolve_backend("numba").name == "numba"


# ---------------------------------------------------------------------------
# Fused count+elements dispatcher
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_fused_dispatcher_consistent_with_unfused(seed):
    """Fused outputs must equal the two unfused calls, on every backend.

    ``pymerge`` ships no fused kernel, so it pins the dispatcher's
    derivation path (counts rebuilt from the hit stream); the others
    pin the genuinely fused kernels against the same reference.
    """
    rng = np.random.default_rng(seed)
    a, ax, b, bx = _random_batch(rng, 40, 1000, 30)
    ref_cnt = batch_intersect_count(a, ax, b, bx, 1000)
    ref_pair, ref_elem, ref_ops = batch_intersect_elements(a, ax, b, bx, 1000)
    for name in _loadable_backends() + ["auto"]:
        with use_backend(name):
            counts, pair, elem, ops = batch_intersect_count_elements(
                a, ax, b, bx, 1000
            )
        np.testing.assert_array_equal(counts, ref_cnt.counts, err_msg=name)
        np.testing.assert_array_equal(pair, ref_pair, err_msg=name)
        np.testing.assert_array_equal(elem, ref_elem, err_msg=name)
        assert ops == ref_cnt.ops == ref_ops, name
        # internal consistency: counts are the pair_idx multiplicities
        np.testing.assert_array_equal(
            counts, np.bincount(pair, minlength=counts.size), err_msg=name
        )


def test_fused_dispatcher_empty_fast_path():
    e = np.empty(0, dtype=np.int64)
    z = np.zeros(1, dtype=np.int64)
    counts, pair, elem, ops = batch_intersect_count_elements(e, z, e, z, 10)
    assert counts.size == 0 and pair.size == 0 and elem.size == 0 and ops == 0


def test_fused_dispatcher_side_swap_invariant():
    rng = np.random.default_rng(5)
    small, sx, _, _ = _random_batch(rng, 12, 300, 4)
    big, bx, _, _ = _random_batch(rng, 12, 300, 50)
    fwd = batch_intersect_count_elements(small, sx, big, bx, 300)
    rev = batch_intersect_count_elements(big, bx, small, sx, 300)
    for got, ref in zip(rev, fwd):
        np.testing.assert_array_equal(got, ref)


# ---------------------------------------------------------------------------
# Auto backend / tuner
# ---------------------------------------------------------------------------


@pytest.fixture()
def _tuner_cache(tmp_path, monkeypatch):
    """Isolate the tuner cache file and in-process winners per test."""
    path = tmp_path / "kernel_tuner.json"
    monkeypatch.setenv(autotune.ENV_TUNER_CACHE, str(path))
    autotune.invalidate()
    yield path
    autotune.invalidate()


def test_classify_regime():
    assert autotune.classify_regime(10, 20, 4) == "tiny"
    assert autotune.classify_regime(100, 100_000, 64) == "skewed"
    assert autotune.classify_regime(40_000, 50_000, 1000) == "balanced"


def test_auto_backend_dispatches_and_persists(_tuner_cache):
    rng = np.random.default_rng(11)
    a, ax, b, bx = _random_batch(rng, 30, 500, 20)
    ref = batch_intersect_count(a, ax, b, bx, 500)
    assert not _tuner_cache.exists()
    with use_backend("auto"):
        got = batch_intersect_count(a, ax, b, bx, 500)
    np.testing.assert_array_equal(got.counts, ref.counts)
    assert got.ops == ref.ops
    # first dispatch ran the one-shot tuner and persisted the winners
    assert _tuner_cache.exists()
    winners = autotune.cached_winners()
    assert set(winners) == set(autotune.REGIMES)
    # winners are concrete loadable backends, never "auto" itself
    for winner in winners.values():
        assert winner != "auto"
        assert resolve_backend(winner).name == winner


def test_tuner_cache_reused_not_retimed(_tuner_cache, monkeypatch):
    _tuner_cache.write_text("")  # invalid json: ignored, then overwritten
    autotune.load_or_tune()
    stamp = _tuner_cache.read_text()
    autotune.invalidate()  # new process simulation: file survives
    calls = []
    monkeypatch.setattr(
        autotune, "tune", lambda *a, **k: calls.append(1) or {}
    )
    autotune.load_or_tune()
    assert not calls, "cached winners must bypass the microbenchmark"
    assert _tuner_cache.read_text() == stamp


def test_tuner_cache_invalidated_by_key_change(_tuner_cache, monkeypatch):
    autotune.load_or_tune()
    assert autotune.cached_winners() is not None
    # a different platform fingerprint must ignore the stale entry
    monkeypatch.setattr(autotune, "cache_key", lambda: "other-platform")
    assert autotune.cached_winners() is None


def test_explicit_selection_bypasses_auto(_tuner_cache, monkeypatch):
    """set_backend / env selection never consults the tuner."""
    calls = []
    monkeypatch.setattr(
        autotune, "load_or_tune", lambda *a, **k: calls.append(1) or {}
    )
    rng = np.random.default_rng(3)
    a, ax, b, bx = _random_batch(rng, 10, 100, 8)
    with use_backend("numpy"):
        batch_intersect_count(a, ax, b, bx, 100)
    monkeypatch.setenv(backends.ENV_BACKEND, "numpy")
    batch_intersect_count(a, ax, b, bx, 100)
    assert not calls


def test_tune_reports_concrete_winners(_tuner_cache):
    winners = autotune.tune(repeats=1)
    assert set(winners) == set(autotune.REGIMES)
    for winner in winners.values():
        assert winner in available_backends() and winner != "auto"
