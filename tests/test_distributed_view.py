"""Tests for per-PE local views: ghosts, interface, cut edges, expansion."""

import numpy as np
import pytest

from repro.graphs import distribute, from_edges, partition_by_vertices
from repro.graphs.generators import disjoint_cliques, gnm, grid2d, ring


def test_distribute_partitions_all_vertices():
    g = ring(10)
    dist = distribute(g, num_pes=3)
    assert dist.num_pes == 3
    assert sum(v.num_local_vertices for v in dist.views) == 10
    assert sum(v.num_local_arcs for v in dist.views) == g.num_arcs


def test_distribute_requires_exactly_one_spec():
    g = ring(6)
    with pytest.raises(ValueError):
        distribute(g)
    with pytest.raises(ValueError):
        distribute(g, num_pes=2, partition=partition_by_vertices(6, 2))


def test_distribute_rejects_oriented():
    from repro.core.orientation import orient_by_degree

    with pytest.raises(ValueError):
        distribute(orient_by_degree(ring(6)), num_pes=2)


def test_ring_ghosts_and_cut():
    g = ring(12)
    dist = distribute(g, num_pes=4)  # blocks of 3
    v0 = dist.view(0)  # owns 0,1,2; neighbors 11 and 3 are ghosts
    assert v0.ghost_vertices.tolist() == [3, 11]
    assert sorted(v0.interface_vertices().tolist()) == [0, 2]
    assert v0.num_cut_edges == 2
    assert dist.total_cut_edges() == 4


def test_neighbors_accessor():
    g = ring(9)
    dist = distribute(g, num_pes=3)
    v1 = dist.view(1)  # owns 3,4,5
    assert v1.neighbors(4).tolist() == [3, 5]
    with pytest.raises(KeyError):
        v1.neighbors(0)


def test_degree_of_matches_global():
    g = gnm(60, 300, seed=2)
    dist = distribute(g, num_pes=5)
    for view in dist.views:
        for v in view.owned_vertices():
            assert view.degree_of(int(v)) == g.degree(int(v))


def test_cut_edges_mirrored_across_pes():
    g = gnm(50, 250, seed=3)
    dist = distribute(g, num_pes=4)
    seen = set()
    for view in dist.views:
        for v, u in view.cut_edges():
            seen.add((int(v), int(u)))
    # every cut arc's mirror is present
    assert all((u, v) in seen for v, u in seen)


def test_disjoint_cliques_have_empty_cut():
    g = disjoint_cliques(4, 5)  # contiguous ids per clique
    dist = distribute(g, num_pes=4)
    assert dist.total_cut_edges() == 0
    assert dist.max_ghosts() == 0


def test_ghost_slot_lookup():
    g = ring(8)
    dist = distribute(g, num_pes=4)
    v0 = dist.view(0)
    slots = v0.ghost_slot(v0.ghost_vertices)
    assert slots.tolist() == list(range(v0.num_ghosts))
    with pytest.raises(KeyError):
        v0.ghost_slot(np.array([1]))  # owned, not a ghost


def test_ghost_ranks_and_neighbor_pes():
    g = ring(12)
    dist = distribute(g, num_pes=4)
    v1 = dist.view(1)  # owns 3,4,5; ghosts 2 (PE0) and 6 (PE2)
    assert v1.ghost_ranks().tolist() == [0, 2]
    assert v1.neighbor_pes().tolist() == [0, 2]


def test_ghost_local_neighborhoods_invert_cut_edges():
    g = from_edges(np.array([[0, 4], [1, 4], [2, 5], [0, 1]]), num_vertices=6)
    dist = distribute(g, num_pes=2)  # PE0 owns 0..2, PE1 owns 3..5
    v0 = dist.view(0)
    gxadj, gadj = v0.ghost_local_neighborhoods()
    # ghosts of PE0: [4, 5]; N_4 ∩ V_0 = {0,1}; N_5 ∩ V_0 = {2}
    assert v0.ghost_vertices.tolist() == [4, 5]
    assert gadj[gxadj[0] : gxadj[1]].tolist() == [0, 1]
    assert gadj[gxadj[1] : gxadj[2]].tolist() == [2]


def test_ghost_local_neighborhoods_empty_cut():
    g = disjoint_cliques(2, 4)
    dist = distribute(g, num_pes=2)
    gxadj, gadj = dist.view(0).ghost_local_neighborhoods()
    assert gadj.size == 0


def test_empty_pe_views():
    g = ring(4)
    dist = distribute(g, num_pes=6)  # some PEs own nothing
    assert sum(v.num_local_vertices for v in dist.views) == 4
    empty = [v for v in dist.views if v.num_local_vertices == 0]
    assert empty
    for v in empty:
        assert v.num_ghosts == 0
        assert v.cut_edges().size == 0


def test_grid_locality_small_cut():
    """Row-major grid ids: the p-way cut is O(p * side)."""
    side = 20
    g = grid2d(side, side)
    dist = distribute(g, num_pes=4)
    assert dist.total_cut_edges() <= 4 * side


def test_memory_words_accounts_arrays():
    g = ring(8)
    dist = distribute(g, num_pes=2)
    v = dist.view(0)
    assert v.memory_words() == v.xadj.size + v.adjncy.size
