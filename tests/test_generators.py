"""Tests for the KaGen-equivalent generators and classic families."""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.generators.gnm import _decode_pairs, random_edge_sample
from repro.graphs.generators.rgg import radius_for_expected_edges
from repro.graphs.generators.rhg import disk_radius_for_avg_degree, hyperbolic_distance


# ---------------------------------------------------------------- classics
def test_complete_graph_counts():
    g = gen.complete_graph(6)
    assert g.num_edges == 15
    assert np.all(g.degrees == 5)


def test_ring_and_path_degrees():
    assert np.all(gen.ring(8).degrees == 2)
    p = gen.path(5)
    assert sorted(p.degrees.tolist()) == [1, 1, 2, 2, 2]


def test_ring_requires_three():
    with pytest.raises(ValueError):
        gen.ring(2)


def test_star_structure():
    g = gen.star(9)
    assert g.degree(0) == 8
    assert np.all(g.degrees[1:] == 1)


def test_grid2d_edge_count():
    g = gen.grid2d(4, 7)
    assert g.num_edges == 4 * 6 + 3 * 7


def test_triangular_lattice_edge_count():
    g = gen.triangular_lattice(3, 3)
    assert g.num_edges == (3 * 2 + 2 * 3) + 4  # grid + diagonals


def test_barbell_structure():
    g = gen.barbell(4, 1)
    assert g.num_vertices == 9
    # 2 * C(4,2) + 2 bridge edges
    assert g.num_edges == 12 + 2


def test_disjoint_cliques_no_cross_edges():
    g = gen.disjoint_cliques(3, 4)
    e = g.undirected_edges()
    assert np.all(e[:, 0] // 4 == e[:, 1] // 4)


def test_wheel_structure():
    g = gen.wheel(7)
    assert g.degree(0) == 6
    assert np.all(g.degrees[1:] == 3)


# ---------------------------------------------------------------- gnm
def test_gnm_exact_edge_count():
    for n, m in ((10, 0), (10, 45), (100, 500), (50, 600)):
        g = gen.gnm(n, m, seed=7)
        assert g.num_vertices == n
        assert g.num_edges == m


def test_gnm_rejects_too_many_edges():
    with pytest.raises(ValueError):
        gen.gnm(5, 11)


def test_gnm_deterministic():
    a = gen.gnm(200, 900, seed=3)
    b = gen.gnm(200, 900, seed=3)
    assert np.array_equal(a.adjncy, b.adjncy)
    c = gen.gnm(200, 900, seed=4)
    assert not np.array_equal(a.adjncy, c.adjncy)


def test_decode_pairs_roundtrip():
    n = 37
    codes = np.arange(n * (n - 1) // 2, dtype=np.int64)
    pairs = _decode_pairs(codes, n)
    assert np.all(pairs[:, 0] < pairs[:, 1])
    # Re-encode and compare.
    u, v = pairs[:, 0], pairs[:, 1]
    re = u * n - u * (u + 1) // 2 + (v - u - 1)
    assert np.array_equal(re, codes)


def test_random_edge_sample_distinct(rng):
    e = random_edge_sample(30, 200, rng)
    assert e.shape == (200, 2)
    keys = e[:, 0] * 30 + e[:, 1]
    assert np.unique(keys).size == 200


def test_gnm_dense_regime():
    n = 20
    total = n * (n - 1) // 2
    g = gen.gnm(n, total - 3, seed=5)
    assert g.num_edges == total - 3


# ---------------------------------------------------------------- rgg2d
def test_rgg_radius_formula():
    r = radius_for_expected_edges(1000, 16000)
    assert 0 < r < 1
    # E[m] = C(n,2) * pi r^2 should give back about 16000
    est = 1000 * 999 / 2 * np.pi * r * r
    assert abs(est - 16000) < 1


def test_rgg_expected_edges_close():
    n = 2000
    g = gen.rgg2d(n, expected_edges=16 * n, seed=21)
    # Boundary effects reduce the count slightly; stay within 25 %.
    assert 0.7 * 16 * n < g.num_edges < 1.1 * 16 * n


def test_rgg_edges_respect_radius():
    n = 300
    r = 0.1
    g = gen.rgg2d(n, radius=r, seed=5)
    # Reconstruct points with the same seed and checks.
    rng = np.random.default_rng(5)
    pts = rng.random((n, 2))
    cells = max(1, int(1.0 / r))
    cell_xy = np.minimum((pts * cells).astype(np.int64), cells - 1)
    cell_id = cell_xy[:, 0] * cells + cell_xy[:, 1]
    pts = pts[np.argsort(cell_id, kind="stable")]
    for u, v in g.undirected_edges()[:200]:
        d = np.hypot(*(pts[u] - pts[v]))
        assert d <= r + 1e-12


def test_rgg_zero_radius_and_empty():
    assert gen.rgg2d(10, radius=0.0).num_edges == 0
    assert gen.rgg2d(0, radius=0.5).num_vertices == 0


def test_rgg_requires_exactly_one_size_parameter():
    with pytest.raises(ValueError):
        gen.rgg2d(10)
    with pytest.raises(ValueError):
        gen.rgg2d(10, radius=0.1, expected_edges=50)


def test_rgg_id_locality():
    """Cell-major ids: most edges connect nearby ids (small cut)."""
    n = 2000
    g = gen.rgg2d(n, expected_edges=16 * n, seed=3)
    e = g.undirected_edges()
    med = np.median(np.abs(e[:, 0] - e[:, 1]))
    assert med < n / 10


# ---------------------------------------------------------------- rhg
def test_rhg_disk_radius_monotone():
    r1 = disk_radius_for_avg_degree(10000, 8, 0.9)
    r2 = disk_radius_for_avg_degree(10000, 32, 0.9)
    assert r1 > r2 > 0


def test_rhg_rejects_bad_alpha():
    with pytest.raises(ValueError):
        disk_radius_for_avg_degree(100, 8, 0.5)


def test_hyperbolic_distance_symmetry_and_zero():
    r = np.array([1.0, 2.0])
    t = np.array([0.3, 4.0])
    assert np.allclose(
        hyperbolic_distance(r[0], t[0], r[1], t[1]),
        hyperbolic_distance(r[1], t[1], r[0], t[0]),
    )
    self_d = hyperbolic_distance(np.array(1.5), np.array(2.0), np.array(1.5), np.array(2.0))
    assert self_d == pytest.approx(0.0, abs=1e-6)


def test_rhg_average_degree_in_range():
    n = 4000
    g = gen.rhg(n, avg_degree=16, gamma=2.8, seed=8)
    avg = 2 * g.num_edges / n
    assert 8 < avg < 32  # the analytic radius is approximate


def test_rhg_power_law_tail():
    """Heavy tail: the max degree should far exceed the average."""
    n = 4000
    g = gen.rhg(n, avg_degree=12, gamma=2.8, seed=9)
    avg = 2 * g.num_edges / n
    assert g.max_degree() > 6 * avg


def test_rhg_small_and_deterministic():
    assert gen.rhg(1, avg_degree=4).num_vertices == 1
    a = gen.rhg(300, avg_degree=8, seed=2)
    b = gen.rhg(300, avg_degree=8, seed=2)
    assert np.array_equal(a.adjncy, b.adjncy)


# ---------------------------------------------------------------- rmat
def test_rmat_sizes():
    g = gen.rmat(8, 8, seed=1)
    assert g.num_vertices == 256
    # Simplification removes duplicates/self-loops; stay in range.
    assert 0.5 * 8 * 256 < g.num_edges <= 8 * 256


def test_rmat_skewed_degrees():
    g = gen.rmat(11, 16, seed=2)
    avg = 2 * g.num_edges / g.num_vertices
    assert g.max_degree() > 8 * avg


def test_rmat_deterministic_and_seed_sensitivity():
    a = gen.rmat(8, 8, seed=3)
    b = gen.rmat(8, 8, seed=3)
    c = gen.rmat(8, 8, seed=4)
    assert np.array_equal(a.adjncy, b.adjncy)
    assert not np.array_equal(a.adjncy, c.adjncy)


def test_rmat_scale_zero():
    g = gen.rmat(0, 4, seed=1)
    assert g.num_vertices == 1
    assert g.num_edges == 0


def test_rmat_rejects_bad_probs():
    with pytest.raises(ValueError):
        gen.rmat(4, 4, probs=(0.5, 0.5, 0.5, 0.5))
    with pytest.raises(ValueError):
        gen.rmat(-1, 4)


def test_rmat_no_scramble_is_different_labelling():
    a = gen.rmat(8, 8, seed=5, scramble=False)
    b = gen.rmat(8, 8, seed=5, scramble=True)
    assert a.num_edges == pytest.approx(b.num_edges, rel=0.2)


# ---------------------------------------------------------------- rgg3d
def test_rgg3d_expected_edges_close():
    n = 3000
    g = gen.rgg3d(n, expected_edges=16 * n, seed=21)
    assert 0.6 * 16 * n < g.num_edges < 1.15 * 16 * n


def test_rgg3d_matches_brute_force():
    """Cell-sweep output equals the quadratic check on a small instance."""
    n, r = 150, 0.22
    g = gen.rgg3d(n, radius=r, seed=8)
    rng = np.random.default_rng(8)
    pts = rng.random((n, 3))
    cells = max(1, int(1.0 / r))
    cell_xyz = np.minimum((pts * cells).astype(np.int64), cells - 1)
    cell_id = (cell_xyz[:, 0] * cells + cell_xyz[:, 1]) * cells + cell_xyz[:, 2]
    pts = pts[np.argsort(cell_id, kind="stable")]
    expected = 0
    for i in range(n):
        d = pts[i + 1 :] - pts[i]
        expected += int(np.count_nonzero((d * d).sum(axis=1) <= r * r))
    assert g.num_edges == expected


def test_rgg3d_deterministic_and_validated():
    a = gen.rgg3d(400, expected_edges=3000, seed=3)
    b = gen.rgg3d(400, expected_edges=3000, seed=3)
    assert np.array_equal(a.adjncy, b.adjncy)
    assert gen.rgg3d(0, radius=0.5).num_vertices == 0
    with pytest.raises(ValueError):
        gen.rgg3d(10)


def test_rgg3d_radius_formula():
    n, m = 2000, 32000
    from repro.graphs.generators.rgg import radius_for_expected_edges_3d

    r = radius_for_expected_edges_3d(n, m)
    est = n * (n - 1) / 2 * 4.0 / 3.0 * np.pi * r**3
    assert est == pytest.approx(m, rel=1e-6)


def test_rgg3d_id_locality():
    n = 2000
    g = gen.rgg3d(n, expected_edges=16 * n, seed=5)
    e = g.undirected_edges()
    med = np.median(np.abs(e[:, 0] - e[:, 1]))
    assert med < n / 6
