"""Tests for the large-p projection module."""

import numpy as np
import pytest

from repro.analysis.projection import (
    fit_power_law,
    fit_scaling_model,
    project_time,
)
from repro.analysis.runner import RunResult
from repro.net.costmodel import MachineSpec


def test_power_law_exact_recovery():
    ps = np.array([1, 2, 4, 8, 16], dtype=float)
    law = fit_power_law(ps, 3.0 * ps**1.5)
    assert law.coefficient == pytest.approx(3.0)
    assert law.exponent == pytest.approx(1.5)
    assert law(32) == pytest.approx(3.0 * 32**1.5)


def test_power_law_single_point_is_constant():
    law = fit_power_law(np.array([4.0]), np.array([7.0]))
    assert law(100) == pytest.approx(7.0)


def test_power_law_handles_zeros():
    law = fit_power_law(np.array([1.0, 2.0, 4.0]), np.array([0.0, 0.0, 0.0]))
    assert law(1024) < 1e-6


def test_power_law_empty_rejected():
    with pytest.raises(ValueError):
        fit_power_law(np.array([]), np.array([]))


def _rows(algo, law_msgs, law_vol, law_work, ps=(2, 4, 8, 16)):
    return [
        RunResult(
            algo,
            "g",
            p,
            1,
            1.0,
            max_messages=int(law_msgs(p)),
            bottleneck_volume=int(law_vol(p)),
            total_ops=int(law_work(p) * p),
        )
        for p in ps
    ]


def test_fit_scaling_model_recovers_laws():
    rows = _rows(
        "ditric",
        lambda p: 10 * p**0.5,
        lambda p: 100 * p,
        lambda p: 5000.0,
    )
    model = fit_scaling_model(rows, "ditric")
    assert model.messages.exponent == pytest.approx(0.5, abs=0.05)
    assert model.volume.exponent == pytest.approx(1.0, abs=0.05)
    assert model.work.exponent == pytest.approx(0.0, abs=0.05)


def test_fit_requires_rows():
    with pytest.raises(ValueError):
        fit_scaling_model([], "ditric")
    with pytest.raises(ValueError):
        fit_scaling_model(
            [RunResult("ditric", "g", 2, None, None, failed="out-of-memory")], "ditric"
        )


def test_projection_reproduces_alpha_p_wall():
    """Synthetic: a dense-exchange algorithm (messages ~ p) must lose
    to a sparse one (messages ~ sqrt(p)) beyond some machine size."""
    spec = MachineSpec(alpha=2e-6, beta=6.4e-10, flop_time=1e-9)
    dense = _rows("dense", lambda p: p - 1, lambda p: 200.0, lambda p: 3000.0)
    sparse = _rows("sparse", lambda p: 4 * p**0.5, lambda p: 400.0, lambda p: 3000.0)
    proj = project_time(dense + sparse, ["dense", "sparse"], [2**k for k in range(1, 16)], spec=spec)
    d = dict(proj["dense"])
    s = dict(proj["sparse"])
    # At small p dense is fine; at 2^15 its alpha*p term dominates.
    assert d[2] <= s[2] * 1.5
    assert d[2**15] > 2 * s[2**15]


def test_projection_matches_simulation_in_range():
    """Held-out validation: fit on p in {1..8}, predict p=16 within 2x."""
    from repro.analysis.sweep import weak_scaling
    from repro.graphs import generators as gen

    rows = weak_scaling(
        lambda n, s: gen.rgg2d(n, expected_edges=16 * n, seed=s),
        ["ditric"],
        [1, 2, 4, 8, 16],
        vertices_per_pe=512,
        scale_memory=False,
    )
    fit_rows = [r for r in rows if r.num_pes <= 8]
    model = fit_scaling_model(fit_rows, "ditric")
    actual = next(r.time for r in rows if r.num_pes == 16)
    predicted = float(model.time(16))
    assert predicted == pytest.approx(actual, rel=1.0)  # within 2x
