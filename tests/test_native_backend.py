"""The cffi/C ``native`` kernel backend: build, cache, contract, fallback.

Split from ``test_kernel_backends.py`` because everything here depends
on a working C toolchain; the whole module skips cleanly (except the
fallback tests) when cffi or a compiler is missing, which is itself a
supported configuration — the registry degrades to numpy with one
warning and the rest of the suite stays green.
"""

import logging
import os

import numpy as np
import pytest

from repro.core import backends
from repro.core.backends import resolve_backend, set_backend, use_backend
from repro.core.intersect import (
    batch_intersect_count,
    batch_intersect_count_elements,
    batch_intersect_elements,
    concat_xadj,
)
from repro.core.native import build_key, builder, native_available

HAVE_NATIVE = native_available()

needs_native = pytest.mark.skipif(
    not HAVE_NATIVE, reason="no C toolchain / cffi: native backend unavailable"
)


@pytest.fixture(autouse=True)
def _reset_selection():
    yield
    set_backend(None)


def _batch(rng, k, bound, max_len, min_len=0):
    blocks_a = [
        np.unique(rng.integers(0, bound, size=rng.integers(min_len, max_len + 1)))
        for _ in range(k)
    ]
    blocks_b = [
        np.unique(rng.integers(0, bound, size=rng.integers(min_len, max_len + 1)))
        for _ in range(k)
    ]
    a = np.concatenate(blocks_a) if k else np.empty(0, dtype=np.int64)
    b = np.concatenate(blocks_b) if k else np.empty(0, dtype=np.int64)
    ax = concat_xadj([blk.size for blk in blocks_a])
    bx = concat_xadj([blk.size for blk in blocks_b])
    return a.astype(np.int64), ax, b.astype(np.int64), bx


@needs_native
def test_native_backend_loads_and_reports_fused():
    backend = resolve_backend("native")
    assert backend.name == "native"
    assert backend.count_elements is not None


@needs_native
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_native_matches_numpy_on_random_batches(seed):
    rng = np.random.default_rng(seed)
    a, ax, b, bx = _batch(rng, 50, 2000, 40)
    ref_cnt = batch_intersect_count(a, ax, b, bx, 2000)
    ref_pair, ref_elem, _ = batch_intersect_elements(a, ax, b, bx, 2000)
    with use_backend("native"):
        cnt = batch_intersect_count(a, ax, b, bx, 2000)
        pair, elem, _ = batch_intersect_elements(a, ax, b, bx, 2000)
        fused = batch_intersect_count_elements(a, ax, b, bx, 2000)
    np.testing.assert_array_equal(cnt.counts, ref_cnt.counts)
    assert cnt.ops == ref_cnt.ops
    np.testing.assert_array_equal(pair, ref_pair)
    np.testing.assert_array_equal(elem, ref_elem)
    np.testing.assert_array_equal(fused[0], ref_cnt.counts)
    np.testing.assert_array_equal(fused[1], ref_pair)
    np.testing.assert_array_equal(fused[2], ref_elem)


@needs_native
def test_native_gallop_path_matches_merge_results():
    """Heavily skewed pairs take the galloping branch (>=16x imbalance)."""
    rng = np.random.default_rng(9)
    small = np.sort(rng.choice(100_000, size=5, replace=False))
    big = np.sort(rng.choice(100_000, size=20_000, replace=False))
    # force some guaranteed hits
    small[:3] = big[[10, 500, 19_000]]
    small = np.unique(small)
    for a, ax, b, bx in [
        (small, concat_xadj([small.size]), big, concat_xadj([big.size])),
        (big, concat_xadj([big.size]), small, concat_xadj([small.size])),
    ]:
        ref = batch_intersect_count(a, ax, b, bx, 100_000)
        with use_backend("native"):
            got = batch_intersect_count(a, ax, b, bx, 100_000)
            pair, elem, _ = batch_intersect_elements(a, ax, b, bx, 100_000)
        np.testing.assert_array_equal(got.counts, ref.counts)
        assert elem.size == int(ref.counts.sum())
        assert np.all(np.isin(elem, small)) and np.all(np.isin(elem, big))


@needs_native
def test_native_accepts_readonly_inputs():
    """Received shm frames surface as read-only views; the C wrappers
    must take them without copying (require_writable=False)."""
    rng = np.random.default_rng(4)
    a, ax, b, bx = _batch(rng, 8, 300, 10)
    for arr in (a, ax, b, bx):
        arr.setflags(write=False)
    ref = batch_intersect_count(a, ax, b, bx, 300)
    with use_backend("native"):
        got = batch_intersect_count(a, ax, b, bx, 300)
    np.testing.assert_array_equal(got.counts, ref.counts)


@needs_native
def test_native_handles_duplicate_hits_across_pairs():
    """Same element matching in many pairs keeps (pair, element) order."""
    blk = np.array([3, 7, 11], dtype=np.int64)
    a = np.tile(blk, 4)
    ax = concat_xadj([3, 3, 3, 3])
    with use_backend("native"):
        counts, pair, elem, _ = batch_intersect_count_elements(a, ax, a, ax, 16)
    np.testing.assert_array_equal(counts, [3, 3, 3, 3])
    np.testing.assert_array_equal(pair, np.repeat(np.arange(4), 3))
    np.testing.assert_array_equal(elem, np.tile(blk, 4))


# ---------------------------------------------------------------------------
# Build cache
# ---------------------------------------------------------------------------


@needs_native
def test_build_artifact_cached_and_reused(tmp_path, monkeypatch):
    monkeypatch.setenv(builder.ENV_BUILD_DIR, str(tmp_path))
    monkeypatch.setattr(builder, "_LIB", None)
    module = builder.load_lib()
    artifact = builder._artifact_path(tmp_path)
    assert artifact.exists()
    stamp = artifact.stat().st_mtime_ns
    # a fresh process (simulated by clearing the memo) reuses the file
    monkeypatch.setattr(builder, "_LIB", None)
    compiled = []
    real_compile = builder._compile
    monkeypatch.setattr(
        builder, "_compile", lambda d: compiled.append(d) or real_compile(d)
    )
    again = builder.load_lib()
    assert not compiled, "existing artifact must be reused, not rebuilt"
    assert artifact.stat().st_mtime_ns == stamp
    assert again.lib is module.lib  # same extension module via sys.modules


@needs_native
def test_forced_rebuild(tmp_path, monkeypatch):
    monkeypatch.setenv(builder.ENV_BUILD_DIR, str(tmp_path))
    monkeypatch.setattr(builder, "_LIB", None)
    builder.load_lib()
    stamp = builder._artifact_path(tmp_path).stat().st_mtime_ns
    monkeypatch.setenv(builder.ENV_REBUILD, "1")
    monkeypatch.setattr(builder, "_LIB", None)
    builder.load_lib()
    assert builder._artifact_path(tmp_path).stat().st_mtime_ns > stamp


def test_build_key_tracks_source():
    key = build_key()
    assert len(key) == 16
    # stable within a process (same source, same toolchain)
    assert build_key() == key


# ---------------------------------------------------------------------------
# Graceful degradation (runs everywhere, including toolchain-less CI)
# ---------------------------------------------------------------------------


def test_native_fallback_warns_once_when_unbuildable(monkeypatch, caplog):
    """An unbuildable native backend degrades to numpy with one warning."""
    import repro.core.native as native_pkg

    def boom():
        raise ImportError("native kernel build failed: no compiler")

    monkeypatch.setattr(native_pkg, "load_native_kernels", boom)
    monkeypatch.delenv(backends.ENV_FALLBACK_WARNED, raising=False)
    monkeypatch.delitem(backends._BACKENDS, "native", raising=False)
    backends._FAILED.pop("native", None)
    try:
        with caplog.at_level(logging.WARNING, logger="repro.kernels"):
            assert resolve_backend("native").name == "numpy"
            assert resolve_backend("native").name == "numpy"  # second resolve
        warnings = [
            r for r in caplog.records if "falling back to numpy" in r.message
        ]
        assert len(warnings) == 1, "warn-once violated"
        assert "native" in os.environ[backends.ENV_FALLBACK_WARNED].split(",")
    finally:
        backends._FAILED.pop("native", None)


def test_selecting_native_never_raises():
    """Known-backend selection must not raise, available or not."""
    set_backend("native")
    assert backends.get_backend().name in ("native", "numpy")


def test_load_lib_raises_importerror_on_compile_failure(tmp_path, monkeypatch):
    pytest.importorskip("cffi", exc_type=ImportError)
    monkeypatch.setenv(builder.ENV_BUILD_DIR, str(tmp_path))
    monkeypatch.setattr(builder, "_LIB", None)

    def broken_compile(directory):
        raise RuntimeError("cc: command not found")

    monkeypatch.setattr(builder, "_compile", broken_compile)
    with pytest.raises(ImportError, match="native kernel build failed"):
        builder.load_lib()
