"""The whole-program dataflow rules R8–R12: corpus, internals, plumbing.

Mirrors ``test_lint.py``'s discipline for the interprocedural layer:
every known-bad snippet must trigger *exactly* its rule, every good
twin must be completely clean, and the machinery underneath — CFG
construction, taint inference, suppression-with-justification,
baselines, emitters — gets direct unit coverage.  A subprocess test
pins byte-identical output across hash seeds, which is what lets CI
diff the SARIF document.
"""

import ast
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import lint_paths, lint_source
from repro.lint.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.lint.cli import main as lint_main
from repro.lint.emit import to_json, to_sarif
from repro.lint.flow.cfg import OVERFLOW, build_cfg, sequences
from repro.lint.flow.taint import expr_tainted, function_taint

SRC_ROOT = Path(__file__).resolve().parent.parent / "src"


def codes_of(source: str) -> set[str]:
    return {f.code for f in lint_source(source)}


# --------------------------------------------------------------------
# Rule corpus: >= 2 positive and >= 2 negative snippets per rule.
# Each positive must fire exactly its own rule — a snippet that also
# trips a lexical rule would be testing the wrong layer.
# --------------------------------------------------------------------

BAD_FLOW = {
    "R8": [
        # Divergence through a callee: R2 cannot see that helper()
        # enters a collective, the call graph can.
        """
def helper(ctx):
    yield from allreduce(ctx, 1)

def prog(ctx):
    if ctx.rank == 0:
        yield from helper(ctx)
    yield from barrier(ctx)
""",
        # Rank-tainted loop condition around a collective body: trip
        # counts differ across PEs, so collective counts do too.
        """
def prog(ctx):
    go = yield from ctx.recv("probe")
    while go:
        yield from barrier(ctx)
        go = yield from ctx.recv("probe")
""",
    ],
    "R9": [
        # Guard never mentions rank lexically, but the condition is
        # received data and the arms enter different collectives.
        """
def prog(ctx):
    data = yield from ctx.recv("t")
    if data is None:
        yield from barrier(ctx)
    else:
        yield from bcast(ctx, 0)
""",
        # Taint through arithmetic: parity is derived from ctx.rank
        # but the guard itself is rank-free text.
        """
def prog(ctx):
    parity = ctx.rank % 2
    if parity == 0:
        yield from barrier(ctx)
    yield
""",
    ],
    "R10": [
        # Destinations iterate a set returned by a callee — R3's
        # single-hop lexical tracking cannot resolve the call.
        """
def targets(ctx):
    return {1, 2, 3}

def prog(ctx):
    for dest in targets(ctx):
        ctx.send(dest, "t", None, 1)
    yield
""",
        # Same, one assignment hop in between.
        """
def pick(ctx):
    return {0: "a", 1: "b"}

def prog(ctx):
    dests = pick(ctx)
    for dest in dests:
        ctx.send(dest, "t", None, 1)
    yield
""",
    ],
    "R11": [
        # Vectorized compute with no route to the cost model.
        """
def prog(ctx, xs):
    acc = np.cumsum(xs)
    yield
    return acc
""",
        # Compute inside a loop, still never charged.
        """
def prog(ctx, chunks):
    out = []
    for c in chunks:
        out.append(np.unique(c))
    yield
    return out
""",
    ],
    "R12": [
        # Checkpoint without the restore-else-recompute guard.
        """
def prog(ctx, state):
    ctx.checkpoint("phase", state)
    yield
""",
        # Captured state mutated after the snapshot is taken.
        """
def prog(ctx, items):
    snap = ctx.restore("work")
    if snap is not None:
        items = snap
    ctx.checkpoint("work", items)
    items.append(1)
    yield
""",
        # Computed domain names defeat global-stability pruning.
        """
def prog(ctx, state, phase):
    ctx.checkpoint("ph" + phase, state)
    yield
""",
    ],
}

GOOD_FLOW = {
    "R8": [
        # Balanced diamond: the early-returning arm enters the same
        # collective sequence as the fall-through — no divergence.
        """
def prog(ctx):
    data = yield from ctx.recv("t")
    if data is None:
        r = yield from bcast(ctx, 0)
        return r
    r = yield from bcast(ctx, data)
    return r
""",
        # A raising arm aborts loudly; it cannot silently skip
        # collectives, so there is nothing to deadlock.
        """
def prog(ctx):
    data = yield from ctx.recv("t")
    if data is None:
        raise RuntimeError("no data")
    yield from barrier(ctx)
""",
    ],
    "R9": [
        # Parameters are rank-invariant configuration.
        """
def prog(ctx, threshold):
    if threshold > 0:
        yield from barrier(ctx)
    yield
""",
        # allreduce results are the same on every PE — the k-core /
        # connected-components convergence idiom must stay legal.
        """
def prog(ctx):
    total = yield from allreduce(ctx, 1)
    if total > 0:
        yield from bcast(ctx, total)
    yield
""",
    ],
    "R10": [
        # sorted(...) re-establishes a deterministic order.
        """
def targets(ctx):
    return {1, 2, 3}

def prog(ctx):
    for dest in sorted(targets(ctx)):
        ctx.send(dest, "t", None, 1)
    yield
""",
        # A list-returning callee is already ordered.
        """
def ordered(ctx):
    return [2, 1]

def prog(ctx):
    for dest in ordered(ctx):
        ctx.send(dest, "t", None, 1)
    yield
""",
    ],
    "R11": [
        # Direct charge next to the compute.
        """
def prog(ctx, xs):
    acc = np.cumsum(xs)
    ctx.charge(int(xs.size))
    yield
    return acc
""",
        # The charge lives in a callee; the call graph finds it.
        """
def kernel(ctx, n):
    ctx.charge(n)

def prog(ctx, xs):
    ys = np.sort(xs)
    kernel(ctx, int(ys.size))
    yield
    return ys
""",
        # Cheap constructors are allowlisted.
        """
def prog(ctx):
    buf = np.empty(4, dtype=np.int64)
    yield
    return buf
""",
    ],
    "R12": [
        # The canonical restore-else-recompute idiom.
        """
def prog(ctx, state):
    snap = ctx.restore("phase")
    if snap is not None:
        state = snap
    ctx.checkpoint("phase", state)
    yield
    return state
""",
        # Deriving a *new* value from captured state is fine; only
        # mutating the captured names is a loss on restart.
        """
def prog(ctx, state):
    snap = ctx.restore("p")
    ctx.checkpoint("p", state)
    out = list(state)
    yield
    return out
""",
    ],
}


@pytest.mark.parametrize(
    "code,idx,src",
    [(c, i, s) for c, snips in BAD_FLOW.items() for i, s in enumerate(snips)],
    ids=lambda v: v if isinstance(v, str) and v.startswith("R") else None,
)
def test_bad_snippet_triggers_exactly_its_rule(code, idx, src):
    assert codes_of(src) == {code}, f"{code} positive #{idx}"


@pytest.mark.parametrize(
    "code,idx,src",
    [(c, i, s) for c, snips in GOOD_FLOW.items() for i, s in enumerate(snips)],
    ids=lambda v: v if isinstance(v, str) and v.startswith("R") else None,
)
def test_good_snippet_is_clean(code, idx, src):
    assert codes_of(src) == set(), f"{code} negative #{idx}"


def test_no_flow_flag_disables_r8_to_r12():
    src = BAD_FLOW["R9"][0]
    assert lint_source(src, flow=False) == []


# --------------------------------------------------------------------
# CFG internals.
# --------------------------------------------------------------------


def _calls_in(stmt):
    return tuple(
        n.func.id
        for n in ast.walk(stmt)
        if isinstance(n, ast.Call) and isinstance(n.func, ast.Name)
    )


def _fn(src):
    return ast.parse(src).body[0]


def test_cfg_branch_targets_cover_both_arms():
    fn = _fn(
        """
def f(x):
    if x:
        a()
    else:
        b()
    c()
"""
    )
    cfg = build_cfg(fn.body)
    branch = cfg.branches[fn.body[0]]
    then_seqs = sequences(cfg, _calls_in, start=branch[0])
    else_seqs = sequences(cfg, _calls_in, start=branch[1])
    assert then_seqs == {("a", "c")}
    assert else_seqs == {("b", "c")}


def test_cfg_balanced_early_return_has_equal_suffixes():
    fn = _fn(
        """
def f(x):
    if x:
        a()
        return 1
    a()
    return 2
"""
    )
    cfg = build_cfg(fn.body)
    then_b, else_b = cfg.branches[fn.body[0]]
    assert sequences(cfg, _calls_in, start=then_b) == sequences(
        cfg, _calls_in, start=else_b
    )


def test_cfg_raise_paths_are_dropped():
    fn = _fn(
        """
def f(x):
    if x:
        raise ValueError(x)
    a()
"""
    )
    cfg = build_cfg(fn.body)
    then_b, else_b = cfg.branches[fn.body[0]]
    assert sequences(cfg, _calls_in, start=then_b) == set()
    assert sequences(cfg, _calls_in, start=else_b) == {("a",)}


def test_cfg_overflow_sentinel_on_path_explosion():
    guards = "\n".join(f"    if x{i}:\n        a()" for i in range(12))
    fn = _fn(f"def f({', '.join(f'x{i}' for i in range(12))}):\n{guards}\n    b()")
    seqs = sequences(build_cfg(fn.body), _calls_in, max_paths=8)
    assert OVERFLOW in seqs


# --------------------------------------------------------------------
# Taint internals.
# --------------------------------------------------------------------


def _expr(src):
    return ast.parse(src, mode="eval").body


def test_expr_taint_basics():
    assert expr_tainted(_expr("ctx.rank"), set())
    assert expr_tainted(_expr("ctx.rank + 1"), set())
    assert expr_tainted(_expr("q.recv('t')"), set())
    assert not expr_tainted(_expr("ctx.num_pes"), set())
    assert not expr_tainted(_expr("allreduce(ctx, x)"), {"x"})
    assert expr_tainted(_expr("f(x)"), {"x"})
    assert not expr_tainted(_expr("f(y)"), {"x"})


def test_function_taint_propagates_through_assignment_chains():
    fn = _fn(
        """
def f(ctx):
    a = ctx.rank
    b = a * 2
    c = sorted(range(b))
    clean = ctx.num_pes
    washed = allreduce(ctx, b)
"""
    )
    tainted = function_taint(fn)
    assert {"a", "b", "c"} <= tainted
    assert "clean" not in tainted
    assert "washed" not in tainted  # sanitized by allreduce


# --------------------------------------------------------------------
# Suppression: flow rules demand a justification.
# --------------------------------------------------------------------

_R9_GUARDED = """
def prog(ctx):
    data = yield from ctx.recv("t")
    if data is None:{noqa}
        yield from barrier(ctx)
    else:
        yield from bcast(ctx, 0)
"""


def test_bare_noqa_does_not_silence_flow_rules():
    assert codes_of(_R9_GUARDED.format(noqa="  # noqa")) == {"R9"}


def test_coded_noqa_without_justification_does_not_silence():
    assert codes_of(_R9_GUARDED.format(noqa="  # noqa: R9")) == {"R9"}


def test_coded_noqa_with_justification_silences():
    noqa = "  # noqa: R9 -- replay guard is globally consistent"
    assert codes_of(_R9_GUARDED.format(noqa=noqa)) == set()


def test_justified_noqa_still_scopes_to_its_code():
    noqa = "  # noqa: R8 -- wrong code, must not silence R9"
    assert codes_of(_R9_GUARDED.format(noqa=noqa)) == {"R9"}


# --------------------------------------------------------------------
# Runner robustness: unreadable input is a finding, not a crash.
# --------------------------------------------------------------------


def test_syntax_error_is_an_r0_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n", encoding="utf-8")
    ok = tmp_path / "fine.py"
    ok.write_text(BAD_FLOW["R11"][0], encoding="utf-8")
    findings = lint_paths([tmp_path])
    by_code = {f.code for f in findings}
    # The broken file reports R0 and the healthy sibling still gets
    # its dataflow analysis.
    assert by_code == {"R0", "R11"}


def test_duplicate_findings_are_deduplicated(tmp_path):
    # Two SPMD callers of the same divergent helper must not multiply
    # the helper's finding; identical (path, line, code) collapse.
    f = tmp_path / "m.py"
    f.write_text(BAD_FLOW["R9"][0], encoding="utf-8")
    findings = lint_paths([f, f])
    assert len(findings) == len(set(findings))


# --------------------------------------------------------------------
# Baselines.
# --------------------------------------------------------------------


def test_baseline_roundtrip_and_stale_detection(tmp_path):
    findings = lint_source(BAD_FLOW["R9"][0], path="m.py")
    assert findings
    bl_path = tmp_path / "baseline.json"
    write_baseline(bl_path, findings)
    baseline = load_baseline(bl_path)
    assert set(baseline) == {fingerprint(f) for f in findings}

    new, stale = apply_baseline(findings, baseline)
    assert new == [] and stale == []

    new, stale = apply_baseline([], baseline)
    assert new == [] and len(stale) == len(baseline)


def test_fingerprint_ignores_line_numbers():
    a, = lint_source(BAD_FLOW["R11"][0], path="m.py")
    b, = lint_source("# moved down a line\n" + BAD_FLOW["R11"][0], path="m.py")
    assert a.line != b.line
    assert fingerprint(a) == fingerprint(b)


def test_cli_strict_fails_on_stale_baseline(tmp_path, capsys):
    target = tmp_path / "m.py"
    target.write_text(BAD_FLOW["R11"][0], encoding="utf-8")
    bl = tmp_path / "baseline.json"
    assert lint_main([str(target), "--update-baseline", str(bl)]) == 0
    # Baselined: clean in both modes.
    assert lint_main([str(target), "--baseline", str(bl)]) == 0
    assert lint_main([str(target), "--baseline", str(bl), "--strict"]) == 0
    # Fix the finding; the baseline entry goes stale.
    target.write_text("def prog(ctx):\n    yield\n", encoding="utf-8")
    assert lint_main([str(target), "--baseline", str(bl)]) == 0
    assert lint_main([str(target), "--baseline", str(bl), "--strict"]) == 1
    assert "stale baseline entry" in capsys.readouterr().err


# --------------------------------------------------------------------
# Emitters and determinism.
# --------------------------------------------------------------------


def test_json_and_sarif_documents_are_well_formed():
    findings = lint_source(BAD_FLOW["R9"][0], path="m.py")
    doc = json.loads(to_json(findings))
    assert doc["count"] == len(findings) == len(doc["findings"])
    sarif = json.loads(to_sarif(findings))
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro.lint"
    assert {r["ruleId"] for r in run["results"]} == {"R9"}
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"R8", "R9", "R10", "R11", "R12"} <= rule_ids


def test_output_is_byte_identical_across_hash_seeds(tmp_path):
    # Hash randomization is the classic source of run-to-run output
    # jitter in set-heavy analyzers; the emitted documents must not
    # depend on it.
    for i, src in enumerate(BAD_FLOW["R9"] + BAD_FLOW["R10"] + BAD_FLOW["R12"]):
        (tmp_path / f"m{i}.py").write_text(src, encoding="utf-8")

    def run(seed):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        env["PYTHONPATH"] = str(SRC_ROOT)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "--format", "json", str(tmp_path)],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 1
        return proc.stdout

    assert run("0") == run("12345")


def test_repo_src_tree_lints_clean_with_flow_rules():
    assert lint_paths([SRC_ROOT]) == []
