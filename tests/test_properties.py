"""Property-based tests (hypothesis) for core invariants.

Strategy: random edge lists → every algorithm agrees with the oracle;
plus structural invariants the paper's correctness argument rests on
(orientation acyclicity, Lemma 1, surrogate completeness, router
delivery, partition laws).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.edge_iterator import edge_iterator, matrix_count
from repro.core.engine import EngineConfig, counting_program
from repro.core.intersect import batch_intersect_count, concat_xadj, intersect_count
from repro.core.lcc import lcc_program, lcc_sequential
from repro.core.orientation import orient_by_degree
from repro.graphs import distribute, from_edges, partition_by_vertices
from repro.net import Machine

SETTINGS = dict(max_examples=40, deadline=None)


@st.composite
def edge_lists(draw, max_n=24, max_m=60):
    n = draw(st.integers(min_value=1, max_value=max_n))
    k = draw(st.integers(min_value=0, max_value=max_m))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=k,
            max_size=k,
        )
    )
    return n, np.array(edges, dtype=np.int64).reshape(-1, 2)


@st.composite
def graphs(draw):
    n, edges = draw(edge_lists())
    return from_edges(edges, num_vertices=n)


# ---------------------------------------------------------------- oracles
@settings(**SETTINGS)
@given(graphs())
def test_oracles_agree(g):
    assert edge_iterator(g).triangles == matrix_count(g)


@settings(**SETTINGS)
@given(graphs())
def test_triangles_invariant_under_relabeling(g):
    from repro.graphs import relabel

    rng = np.random.default_rng(7)
    perm = rng.permutation(g.num_vertices)
    assert edge_iterator(g).triangles == edge_iterator(relabel(g, perm)).triangles


@settings(**SETTINGS)
@given(graphs())
def test_orientation_partitions_edges(g):
    og = orient_by_degree(g)
    assert og.num_arcs == g.num_edges
    # every oriented arc is an edge of g
    for u, v in og.edges()[:50]:
        assert g.has_edge(int(u), int(v))


@settings(**SETTINGS)
@given(graphs(), st.integers(min_value=1, max_value=6))
def test_distributed_variants_match_oracle(g, p):
    truth = matrix_count(g)
    dist = distribute(g, num_pes=p)
    for cfg in (
        EngineConfig(),
        EngineConfig(contraction=True),
        EngineConfig(indirect=True, contraction=True),
        EngineConfig(aggregate=False, surrogate=False),
    ):
        res = Machine(p).run(counting_program, dist, cfg)
        assert res.values[0].triangles_total == truth


@settings(**SETTINGS)
@given(graphs(), st.integers(min_value=1, max_value=5))
def test_lemma1_cut_graph_counts_type3(g, p):
    """Lemma 1: triangles of the cut graph == type-3 triangles of G."""
    part = partition_by_vertices(g.num_vertices, p)
    e = g.undirected_edges()
    if e.size == 0:
        return
    ranks = part.rank_of(e.ravel()).reshape(-1, 2)
    cut_edges = e[ranks[:, 0] != ranks[:, 1]]
    cut_graph = from_edges(cut_edges, num_vertices=g.num_vertices)
    cut_triangles = edge_iterator(cut_graph).triangles
    # Count type-3 triangles directly from the enumeration.
    from repro.core.edge_iterator import triangle_edges

    tri = triangle_edges(g)
    if tri.size:
        tri_ranks = part.rank_of(tri.ravel()).reshape(-1, 3)
        type3 = int(
            np.count_nonzero(
                (tri_ranks[:, 0] != tri_ranks[:, 1])
                & (tri_ranks[:, 1] != tri_ranks[:, 2])
                & (tri_ranks[:, 0] != tri_ranks[:, 2])
            )
        )
    else:
        type3 = 0
    assert cut_triangles == type3


@settings(**SETTINGS)
@given(graphs(), st.integers(min_value=1, max_value=5))
def test_lcc_distributed_matches_sequential(g, p):
    expected = lcc_sequential(g)
    dist = distribute(g, num_pes=p)
    res = Machine(p).run(lcc_program, dist, EngineConfig(contraction=True))
    got = np.concatenate([v.lcc for v in res.values])
    assert np.allclose(got, expected)


@settings(**SETTINGS)
@given(graphs())
def test_lcc_bounds(g):
    lcc = lcc_sequential(g)
    assert np.all((lcc >= 0.0) & (lcc <= 1.0))


# ---------------------------------------------------------------- kernels
@settings(**SETTINGS)
@given(
    st.lists(
        st.tuples(
            st.lists(st.integers(0, 40), max_size=12),
            st.lists(st.integers(0, 40), max_size=12),
        ),
        max_size=12,
    )
)
def test_batch_intersection_matches_set_semantics(pairs):
    a_blocks = [np.unique(np.array(a, dtype=np.int64)) for a, _ in pairs]
    b_blocks = [np.unique(np.array(b, dtype=np.int64)) for _, b in pairs]
    a_cat = np.concatenate(a_blocks) if a_blocks else np.empty(0, dtype=np.int64)
    b_cat = np.concatenate(b_blocks) if b_blocks else np.empty(0, dtype=np.int64)
    a_x = concat_xadj(np.array([x.size for x in a_blocks], dtype=np.int64))
    b_x = concat_xadj(np.array([x.size for x in b_blocks], dtype=np.int64))
    res = batch_intersect_count(a_cat, a_x, b_cat, b_x, 41)
    expected = [len(set(a.tolist()) & set(b.tolist())) for a, b in zip(a_blocks, b_blocks)]
    assert res.counts.tolist() == expected


@settings(**SETTINGS)
@given(
    st.lists(st.integers(0, 100), max_size=30),
    st.lists(st.integers(0, 100), max_size=30),
)
def test_scalar_intersection_matches_sets(a, b):
    ua = np.unique(np.array(a, dtype=np.int64))
    ub = np.unique(np.array(b, dtype=np.int64))
    assert intersect_count(ua, ub) == len(set(ua.tolist()) & set(ub.tolist()))


# ---------------------------------------------------------------- partitions
@settings(**SETTINGS)
@given(st.integers(0, 200), st.integers(1, 16))
def test_partition_covers_and_ordered(n, p):
    part = partition_by_vertices(n, p)
    sizes = [part.owned_count(i) for i in range(p)]
    assert sum(sizes) == n
    assert max(sizes) - min(sizes) <= 1
    if n:
        ranks = part.rank_of(np.arange(n))
        assert np.all(np.diff(ranks) >= 0)


@settings(**SETTINGS)
@given(graphs(), st.integers(1, 6))
def test_ghosts_are_exactly_remote_neighbors(g, p):
    dist = distribute(g, num_pes=p)
    for view in dist.views:
        expected = set()
        for v in view.owned_vertices():
            for u in g.neighbors(int(v)):
                if not (view.vlo <= u < view.vhi):
                    expected.add(int(u))
        assert set(view.ghost_vertices.tolist()) == expected


# ---------------------------------------------------------------- routing
@settings(**SETTINGS)
@given(st.integers(1, 30))
def test_grid_proxy_valid_for_all_pairs(p):
    from repro.net import Grid

    g = Grid.of(p)
    for s in range(p):
        for d in range(p):
            assert 0 <= g.proxy(s, d) < p


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 12), st.data())
def test_grid_router_delivery_random_traffic(p, data):
    from repro.net import GridRouter, Record

    traffic = data.draw(
        st.lists(
            st.tuples(st.integers(0, p - 1), st.integers(0, p - 1)),
            max_size=20,
        )
    )

    def prog(ctx):
        r = GridRouter(ctx, "t", threshold_words=32)
        for src, dest in traffic:
            if src == ctx.rank:
                r.post(dest, Record(src * 1000 + dest, np.empty(0, dtype=np.int64)))
        recs = yield from r.finalize()
        return sorted(x.vertex for x in recs)

    res = Machine(p).run(prog)
    for rank in range(p):
        expected = sorted(s * 1000 + d for s, d in traffic if d == rank)
        assert res.values[rank] == expected


# ---------------------------------------------------------------- bloom
@settings(**SETTINGS)
@given(st.lists(st.integers(0, 10**6), min_size=1, max_size=200), st.integers(0, 100))
def test_bloom_never_false_negative(keys, seed):
    from repro.amq import BloomFilter

    arr = np.unique(np.array(keys, dtype=np.int64))
    f = BloomFilter.for_elements(arr.size, bits_per_element=6, seed=seed)
    f.add(arr)
    assert np.all(f.query(arr))


@settings(**SETTINGS)
@given(st.lists(st.integers(0, 10**6), min_size=1, max_size=200), st.integers(0, 100))
def test_ssbf_never_false_negative(keys, seed):
    from repro.amq import SingleShotBloomFilter

    arr = np.unique(np.array(keys, dtype=np.int64))
    f = SingleShotBloomFilter.for_elements(arr.size, cells_per_element=8, seed=seed)
    f.add(arr)
    assert np.all(f.query(arr))


# ------------------------------------------------- other analytics
@settings(max_examples=25, deadline=None)
@given(graphs(), st.integers(min_value=1, max_value=5))
def test_distributed_kcore_property(g, p):
    from repro.core.kcore import kcore_program
    from repro.graphs.stats import core_numbers

    dist = distribute(g, num_pes=p)
    res = Machine(p).run(kcore_program, dist)
    got = np.concatenate([v.cores for v in res.values])
    assert np.array_equal(got, core_numbers(g))


@settings(max_examples=25, deadline=None)
@given(graphs(), st.integers(min_value=1, max_value=5))
def test_distributed_components_property(g, p):
    from repro.core.components import components_program
    from repro.graphs.stats import connected_components

    count, labels = connected_components(g)
    dist = distribute(g, num_pes=p)
    res = Machine(p).run(components_program, dist)
    got = np.concatenate([v.labels for v in res.values])
    assert res.values[0].num_components == count
    # Two vertices share a scipy component iff they share a label.
    for comp in range(count):
        members = np.flatnonzero(labels == comp)
        assert np.unique(got[members]).size == 1


@settings(max_examples=25, deadline=None)
@given(graphs())
def test_degeneracy_orientation_property(g):
    from repro.core.orientation import orient
    from repro.graphs.stats import degeneracy, degeneracy_order

    og = orient(g, degeneracy_order(g))
    assert og.max_degree() <= max(degeneracy(g), 0)
    assert edge_iterator(og).triangles == edge_iterator(g).triangles
