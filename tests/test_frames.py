"""Property-style equivalence suite for the packed frame wire format.

The contract under test (``docs/PERFORMANCE.md``): the frame path
(``post_many`` + :class:`RecordFrame` receive) is observationally
identical to the legacy path (one ``post(Record(...))`` per record) —
same received contents, same charged words, same flush boundaries, same
kernel totals — on the simulated :class:`Machine` and on the real
process backend :class:`ProcessMachine`.
"""

import numpy as np
import pytest

from repro.net import (
    HEADER_WORDS,
    BufferedMessageQueue,
    Machine,
    Record,
    RecordFrame,
    flatten_records,
    merge_frames,
)
from repro.net.frames import BROADCAST, FrameBuilder
from repro.net.parallel import ProcessMachine


def _random_batch(rng, num_pes, n):
    """A messy record batch: mixed shapes, empty neighborhoods, self posts."""
    dests = rng.integers(0, num_pes, size=n).astype(np.int64)
    vertices = rng.integers(0, 500, size=n).astype(np.int64)
    # Roughly half broadcast (-1), half targeted.
    targets = np.where(
        rng.random(n) < 0.5, BROADCAST, rng.integers(0, 500, size=n)
    ).astype(np.int64)
    sizes = rng.integers(0, 7, size=n).astype(np.int64)  # includes empty
    xadj = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(sizes, out=xadj[1:])
    neighbors = rng.integers(0, 1000, size=int(xadj[-1])).astype(np.int64)
    return dests, vertices, targets, xadj, neighbors


def _records_of(dests, vertices, targets, xadj, neighbors):
    out = []
    for i in range(dests.size):
        t = int(targets[i])
        out.append(
            (
                int(dests[i]),
                Record(
                    int(vertices[i]),
                    neighbors[xadj[i] : xadj[i + 1]],
                    target=None if t == BROADCAST else t,
                ),
            )
        )
    return out


def _canon(received):
    """Order-preserving canonical form of a received record sequence."""
    out = []
    for r in received:
        t = BROADCAST if r.target is None else int(r.target)
        out.append((int(r.vertex), t, tuple(r.neighbors.tolist())))
    return out


# ---------------------------------------------------------------------------
# Pure frame properties (no machine).
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_frame_words_equal_record_word_sum(seed):
    rng = np.random.default_rng(seed)
    _, vertices, targets, xadj, neighbors = _random_batch(rng, 4, 40)
    frame = RecordFrame(vertices, targets, xadj, neighbors)
    records = frame.to_records()
    assert frame.words == sum(r.words for r in records)
    assert frame.record_words().tolist() == [r.words for r in records]


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_from_records_roundtrip_and_select(seed):
    rng = np.random.default_rng(seed)
    _, vertices, targets, xadj, neighbors = _random_batch(rng, 4, 25)
    frame = RecordFrame(vertices, targets, xadj, neighbors)
    again = RecordFrame.from_records(frame.to_records())
    assert _canon(again) == _canon(frame)
    idx = rng.permutation(len(frame))[:10]
    sub = frame.select(np.sort(idx))
    expected = [_canon(frame)[i] for i in np.sort(idx)]
    assert _canon(sub) == expected
    assert sub.words == sum(frame.record_words()[np.sort(idx)])


def test_merge_and_flatten_agree():
    rng = np.random.default_rng(7)
    frames = []
    for _ in range(3):
        _, v, t, x, a = _random_batch(rng, 4, 10)
        frames.append(RecordFrame(v, t, x, a))
    merged = merge_frames(frames)
    flat = flatten_records(frames)
    assert _canon(merged) == _canon(flat)
    assert merged.words == sum(f.words for f in frames)


def test_builder_matches_from_records():
    rng = np.random.default_rng(11)
    _, vertices, targets, xadj, neighbors = _random_batch(rng, 4, 20)
    frame = RecordFrame(vertices, targets, xadj, neighbors)
    b = FrameBuilder()
    for rec in frame:
        b.append_record(rec)
    assert _canon(b.build()) == _canon(frame)


# ---------------------------------------------------------------------------
# Machine equivalence: post_many vs one post() per Record.
# ---------------------------------------------------------------------------

#: Thresholds covering no aggregation, frequent mid-run flushes, and a
#: single big flush at finalize.
THRESHOLDS = [0, 25, 10_000]


def exchange_program(ctx, seed, threshold, mode, n=60):
    """Post a pseudo-random batch, legacy- or frame-style, and drain."""
    rng = np.random.default_rng(seed * 1000 + ctx.rank)
    dests, vertices, targets, xadj, neighbors = _random_batch(
        rng, ctx.num_pes, n
    )
    q = BufferedMessageQueue(ctx, "t", threshold_words=threshold)
    if mode == "frames":
        q.post_many(dests, vertices, targets, xadj, neighbors)
    else:
        for dest, rec in _records_of(dests, vertices, targets, xadj, neighbors):
            q.post(dest, rec)
    flushes = q.flushes
    received = yield from q.finalize()
    return (flushes, _canon(received), q.records_posted)


@pytest.mark.parametrize("threshold", THRESHOLDS)
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_machine_frame_path_is_bit_identical_to_legacy(seed, threshold):
    legacy = Machine(4).run(exchange_program, seed, threshold, "legacy")
    frames = Machine(4).run(exchange_program, seed, threshold, "frames")
    # Same received contents in the same order, same flush boundaries,
    # same per-record bookkeeping.
    assert frames.values == legacy.values
    # Same charged communication: words, message count, simulated time.
    for fm, lm in zip(frames.metrics.per_pe, legacy.metrics.per_pe):
        assert fm.words_sent == lm.words_sent
        assert fm.messages_sent == lm.messages_sent
        assert fm.peak_buffer_words == lm.peak_buffer_words
    assert frames.time == legacy.time


@pytest.mark.parametrize("seed", [1, 2])
def test_machine_equivalence_with_empty_and_self_only_batches(seed):
    def prog(ctx, mode):
        q = BufferedMessageQueue(ctx, "t", threshold_words=50)
        z = np.empty(0, dtype=np.int64)
        if mode == "frames":
            # Empty batch, then a self-post-only batch.
            q.post_many(z, z, z, np.zeros(1, dtype=np.int64), z)
            q.post_many(
                np.array([ctx.rank], dtype=np.int64),
                np.array([9], dtype=np.int64),
                np.array([BROADCAST], dtype=np.int64),
                np.array([0, 2], dtype=np.int64),
                np.array([4, 5], dtype=np.int64),
            )
        else:
            q.post(ctx.rank, Record(9, np.array([4, 5], dtype=np.int64)))
        received = yield from q.finalize()
        return _canon(received)

    legacy = Machine(3).run(prog, "legacy")
    frames = Machine(3).run(prog, "frames")
    assert frames.values == legacy.values == [[(9, BROADCAST, (4, 5))]] * 3


# ---------------------------------------------------------------------------
# Kernel totals: a frame and its record list count identically.
# ---------------------------------------------------------------------------


def _sorted_batch(rng, num_pes, n):
    """Batch with sorted-unique neighborhoods (kernel precondition)."""
    dests, vertices, targets, xadj, _ = _random_batch(rng, num_pes, n)
    sizes = np.diff(xadj)
    chunks = [
        np.sort(rng.choice(100, size=int(s), replace=False)).astype(np.int64)
        for s in sizes
    ]
    neighbors = (
        np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
    )
    # Clamp targets into the receiver's local window [0, 50).
    targets = np.where(targets == BROADCAST, BROADCAST, targets % 50)
    return dests, vertices, targets, xadj, neighbors


@pytest.mark.parametrize("seed", [5, 6, 7])
def test_count_record_pairs_frame_equals_record_list(seed):
    from repro.core.kernels import count_record_pairs

    rng = np.random.default_rng(seed)
    _, vertices, targets, xadj, neighbors = _sorted_batch(rng, 4, 30)
    frame = RecordFrame(vertices, targets, xadj, neighbors)
    # A local CSR over vertices [0, 50): each has a sorted neighborhood.
    lx = np.zeros(51, dtype=np.int64)
    np.cumsum(rng.integers(0, 6, size=50), out=lx[1:])
    ladj = np.sort(rng.integers(0, 100, size=int(lx[-1]))).astype(np.int64)

    def prog(ctx, records):
        total = count_record_pairs(ctx, records, lx, ladj, 0, 50, 101)
        charged = ctx.metrics.local_ops
        return total, charged
        yield  # pragma: no cover

    by_frame = Machine(1).run(prog, frame)
    by_list = Machine(1).run(prog, frame.to_records())
    assert by_frame.values == by_list.values
    assert by_frame.time == by_list.time


# ---------------------------------------------------------------------------
# ProcessMachine: the frame path survives real pickling across processes.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode", ["legacy", "frames"])
def test_process_machine_exchange_matches_simulator(mode):
    sim = Machine(2).run(exchange_program, 4, 25, mode, 30)
    par = ProcessMachine(2).run(exchange_program, 4, 25, mode, 30)
    # Contents are set-identical per PE (real delivery may interleave
    # sources differently); flush counts and words are exact.
    for (sf, sc, sp), (pf, pc, pp) in zip(sim.values, par.values):
        assert sf == pf
        assert sp == pp
        assert sorted(sc) == sorted(pc)
    for sm, pm in zip(sim.metrics.per_pe, par.metrics.per_pe):
        assert sm.words_sent == pm.words_sent
        assert sm.messages_sent == pm.messages_sent


def test_process_machine_frame_path_matches_legacy_words():
    legacy = ProcessMachine(2).run(exchange_program, 9, 25, "legacy", 30)
    frames = ProcessMachine(2).run(exchange_program, 9, 25, "frames", 30)
    for (lf, lc, lp), (ff, fc, fp) in zip(legacy.values, frames.values):
        assert lf == ff
        assert lp == fp
        assert sorted(lc) == sorted(fc)
    for lm, fm in zip(legacy.metrics.per_pe, frames.metrics.per_pe):
        assert lm.words_sent == fm.words_sent
        assert lm.messages_sent == fm.messages_sent
