"""More property-based suites: conservation laws and IO round-trips."""

import io

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.engine import EngineConfig, counting_program
from repro.graphs import distribute, from_edges
from repro.graphs.io import read_edge_list
from repro.net import Machine

SETTINGS = dict(max_examples=30, deadline=None)


@st.composite
def graphs(draw, max_n=20, max_m=50):
    n = draw(st.integers(min_value=1, max_value=max_n))
    k = draw(st.integers(min_value=0, max_value=max_m))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=k,
            max_size=k,
        )
    )
    return from_edges(np.array(edges, dtype=np.int64).reshape(-1, 2), num_vertices=n)


# ---------------------------------------------------------- conservation
@settings(**SETTINGS)
@given(graphs(), st.integers(min_value=1, max_value=6))
def test_words_and_messages_conserved(g, p):
    """Every word/message sent is received exactly once (no loss, no dup)."""
    dist = distribute(g, num_pes=p)
    res = Machine(p).run(counting_program, dist, EngineConfig(contraction=True))
    sent_words = sum(m.words_sent for m in res.metrics.per_pe)
    recv_words = sum(m.words_received for m in res.metrics.per_pe)
    sent_msgs = sum(m.messages_sent for m in res.metrics.per_pe)
    recv_msgs = sum(m.messages_received for m in res.metrics.per_pe)
    assert sent_words == recv_words
    assert sent_msgs == recv_msgs


@settings(**SETTINGS)
@given(graphs(), st.integers(min_value=1, max_value=6))
def test_phase_times_account_full_clock(g, p):
    """Per-PE phase times sum to (almost) the whole clock.

    Only the final allreduce runs outside a phase, so the residue is
    the reduction's communication cost.
    """
    dist = distribute(g, num_pes=p)
    res = Machine(p).run(counting_program, dist, EngineConfig(contraction=True))
    for m in res.metrics.per_pe:
        phase_sum = sum(m.phase_times.values())
        assert phase_sum <= m.clock + 1e-12
        residue = m.clock - phase_sum
        # allreduce: <= 2 log2 p messages of one word each way plus waits;
        # bound it loosely by p * (alpha + beta) * 4 + slack from waiting
        # on stragglers (which is bounded by the makespan).
        assert residue <= res.metrics.makespan + 1e-12


@settings(**SETTINGS)
@given(graphs(), st.integers(min_value=1, max_value=5))
def test_indirect_volume_at_most_double_plus_headers(g, p):
    dist = distribute(g, num_pes=p)
    direct = Machine(p).run(counting_program, dist, EngineConfig())
    indirect = Machine(p).run(counting_program, dist, EngineConfig(indirect=True))
    assert direct.values[0].triangles_total == indirect.values[0].triangles_total
    records = sum(v.records_sent for v in direct.values)
    # Two hops + one routing word per record + barrier duplication.
    bound = 2 * direct.metrics.total_volume + records + 8 * p * np.log2(p + 1) + 16
    assert indirect.metrics.total_volume <= bound


@settings(**SETTINGS)
@given(graphs(), st.integers(min_value=1, max_value=5), st.integers(0, 3))
def test_threshold_never_changes_result(g, p, factor_idx):
    factors = (0.01, 0.5, 2.0, 100.0)
    dist = distribute(g, num_pes=p)
    base = Machine(p).run(counting_program, dist, EngineConfig())
    varied = Machine(p).run(
        counting_program,
        dist,
        EngineConfig(threshold_factor=factors[factor_idx]),
    )
    assert base.values[0].triangles_total == varied.values[0].triangles_total
    # Volume is threshold-independent; only message counts change.
    assert base.metrics.total_volume == varied.metrics.total_volume


# ---------------------------------------------------------- IO roundtrips
@settings(**SETTINGS)
@given(graphs())
def test_edge_list_roundtrip_property(g):
    if g.num_edges == 0:
        return  # empty edge lists carry no graph
    text = "\n".join(f"{u} {v}" for u, v in g.undirected_edges())
    back = read_edge_list(io.StringIO(text))
    # Isolated trailing vertices are not representable in an edge list,
    # so compare edge structure and derived counts, not vertex counts.
    assert back.num_edges == g.num_edges
    from repro.core.edge_iterator import edge_iterator

    assert edge_iterator(back).triangles == edge_iterator(g).triangles


@settings(**SETTINGS)
@given(graphs())
def test_binary_roundtrip_property(g):
    import tempfile
    from pathlib import Path

    from repro.graphs.io import read_binary, write_binary

    with tempfile.TemporaryDirectory() as d:
        path = Path(d) / "g.npz"
        write_binary(g, path)
        back = read_binary(path)
    assert np.array_equal(back.xadj, g.xadj)
    assert np.array_equal(back.adjncy, g.adjncy)
