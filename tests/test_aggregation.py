"""Tests for the dynamic buffered message queue (Section IV-A)."""

import numpy as np
import pytest

from repro.net import BufferedMessageQueue, HEADER_WORDS, Machine, Record


def _rec(v, size=3, target=None):
    return Record(v, np.arange(size, dtype=np.int64), target=target)


def test_record_words():
    assert _rec(0, 5).words == 5 + HEADER_WORDS
    assert _rec(0, 5, target=7).words == 5 + HEADER_WORDS + 1
    assert _rec(0, 0).words == HEADER_WORDS


def test_no_aggregation_sends_one_message_per_record():
    def prog(ctx):
        q = BufferedMessageQueue(ctx, "t", threshold_words=0)
        if ctx.rank == 0:
            for i in range(5):
                q.post(1, _rec(i))
        recs = yield from q.finalize()
        return len(recs)

    res = Machine(2).run(prog)
    assert res.values[1] == 5
    assert res.metrics.per_pe[0].messages_sent >= 5  # one per record (+barrier)


def test_aggregation_batches_into_single_message():
    def prog(ctx):
        q = BufferedMessageQueue(ctx, "t", threshold_words=10_000)
        if ctx.rank == 0:
            for i in range(50):
                q.post(1, _rec(i))
        recs = yield from q.finalize()
        return len(recs)

    res = Machine(2).run(prog)
    assert res.values[1] == 50
    # 1 data message + barrier traffic.
    data_msgs = res.metrics.per_pe[0].messages_sent
    import math

    assert data_msgs == 1 + math.ceil(math.log2(2))


def test_threshold_triggers_flush():
    def prog(ctx):
        q = BufferedMessageQueue(ctx, "t", threshold_words=3 * _rec(0).words)
        if ctx.rank == 0:
            for i in range(10):
                q.post(1, _rec(i))
            flushes_before_finalize = q.flushes
        else:
            flushes_before_finalize = 0
        yield from q.finalize()
        return flushes_before_finalize

    res = Machine(2).run(prog)
    assert res.values[0] >= 2  # multiple mid-run flushes


def test_buffer_high_water_mark_bounded_by_threshold():
    def prog(ctx):
        threshold = 40
        q = BufferedMessageQueue(ctx, "t", threshold_words=threshold)
        if ctx.rank == 0:
            for i in range(100):
                q.post(1, _rec(i))
        yield from q.finalize()
        return None

    res = Machine(2).run(prog)
    peak = res.metrics.per_pe[0].peak_buffer_words
    # Peak exceeds the threshold by at most one record (flush happens
    # right after the overflowing post) -- the linear-memory guarantee.
    assert peak <= 40 + _rec(0).words


def test_self_posts_bypass_network():
    def prog(ctx):
        q = BufferedMessageQueue(ctx, "t", threshold_words=100)
        q.post(ctx.rank, _rec(42))
        recs = yield from q.finalize()
        return [r.vertex for r in recs]

    res = Machine(3).run(prog)
    assert res.values == [[42]] * 3
    for m in res.metrics.per_pe:
        # only barrier traffic
        assert m.words_sent <= 2 * 2


def test_records_keep_payload_integrity():
    def prog(ctx):
        q = BufferedMessageQueue(ctx, "t", threshold_words=0)
        if ctx.rank == 0:
            q.post(1, Record(7, np.array([1, 4, 9], dtype=np.int64)))
        recs = yield from q.finalize()
        if ctx.rank == 1:
            (r,) = recs
            return (r.vertex, r.neighbors.tolist())
        return None

    res = Machine(2).run(prog)
    assert res.values[1] == (7, [1, 4, 9])


def test_negative_threshold_rejected():
    def prog(ctx):
        with pytest.raises(ValueError):
            BufferedMessageQueue(ctx, "t", threshold_words=-1)
        return None
        yield  # pragma: no cover

    Machine(1).run(prog)


def test_volume_matches_record_words():
    def prog(ctx):
        q = BufferedMessageQueue(ctx, "t", threshold_words=10_000)
        if ctx.rank == 0:
            for i in range(10):
                q.post(1, _rec(i, size=4))
        yield from q.finalize()
        return None

    res = Machine(2).run(prog)
    sent = res.metrics.per_pe[0].words_sent
    expected = 10 * (4 + HEADER_WORDS)
    # plus barrier control words
    assert sent == expected + 1
