"""Release hygiene: exports, version, documentation deliverables."""

from pathlib import Path

import repro

ROOT = Path(__file__).parent.parent


def test_version_consistent():
    import repro.version

    assert repro.__version__ == repro.version.__version__
    text = (ROOT / "pyproject.toml").read_text()
    assert f'version = "{repro.__version__}"' in text


def test_top_level_exports():
    assert callable(repro.count_triangles)
    assert callable(repro.local_clustering_coefficients)
    assert hasattr(repro, "graphs")
    assert hasattr(repro, "generators")


def test_subpackage_all_exports_resolve():
    import repro.amq
    import repro.analysis
    import repro.baselines
    import repro.core
    import repro.graphs
    import repro.net

    for module in (
        repro.amq,
        repro.analysis,
        repro.baselines,
        repro.core,
        repro.graphs,
        repro.net,
    ):
        for name in module.__all__:
            assert getattr(module, name) is not None, f"{module.__name__}.{name}"


def test_documentation_deliverables_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE", "CHANGELOG.md"):
        path = ROOT / name
        assert path.exists(), name
        assert path.stat().st_size > 200, name
    assert (ROOT / "docs" / "TUTORIAL.md").exists()


def test_design_md_has_required_sections():
    text = (ROOT / "DESIGN.md").read_text()
    assert "Substitutions" in text
    assert "Per-experiment index" in text
    assert "Table I" in text and "Fig. 8" in text


def test_experiments_md_covers_every_artifact():
    text = (ROOT / "EXPERIMENTS.md").read_text()
    for artifact in ("Table I", "Fig. 2", "Fig. 5", "Fig. 6", "Fig. 7", "Fig. 8"):
        assert artifact in text, artifact


def test_every_benchmark_has_a_results_reference():
    readme = (ROOT / "benchmarks" / "README.md").read_text()
    for bench in sorted((ROOT / "benchmarks").glob("bench_*.py")):
        assert bench.name in readme, bench.name


def test_examples_directory_contract():
    examples = sorted((ROOT / "examples").glob("*.py"))
    assert len(examples) >= 3
    readme = (ROOT / "README.md").read_text()
    for ex in examples:
        assert ex.name in readme, f"{ex.name} missing from README"
