"""Tests for graph statistics, degeneracy ordering, distributed k-core."""

import numpy as np
import pytest

from repro.core.kcore import h_index, kcore_program
from repro.graphs import distribute
from repro.graphs import generators as gen
from repro.graphs.stats import (
    DegreeSummary,
    connected_components,
    core_numbers,
    degeneracy,
    degeneracy_order,
    degree_summary,
)
from repro.net import Machine


# -------------------------------------------------------------- summary
def test_degree_summary_fields():
    s = degree_summary(gen.star(11))
    assert s.min == 1 and s.max == 10
    assert s.mean == pytest.approx(20 / 11)
    assert s.skew > 5


def test_degree_summary_empty():
    s = DegreeSummary.of(np.empty(0, dtype=np.int64))
    assert s.max == 0 and s.skew == 1.0


# ---------------------------------------------------------- components
def test_connected_components_counts():
    g = gen.disjoint_cliques(3, 4)
    count, labels = connected_components(g)
    assert count == 3
    assert np.unique(labels).size == 3


def test_connected_components_single():
    count, _ = connected_components(gen.ring(9))
    assert count == 1


def test_connected_components_empty():
    from repro.graphs import empty_graph

    count, labels = connected_components(empty_graph(0))
    assert count == 0 and labels.size == 0


# ------------------------------------------------------------ k-cores
def test_core_numbers_match_networkx(random_graph):
    import networkx as nx

    cores = core_numbers(random_graph)
    expected = nx.core_number(random_graph.to_networkx())
    assert cores.tolist() == [expected[v] for v in range(random_graph.num_vertices)]


def test_core_numbers_known_values():
    assert core_numbers(gen.complete_graph(5)).tolist() == [4] * 5
    assert core_numbers(gen.ring(6)).tolist() == [2] * 6
    assert core_numbers(gen.star(5)).tolist() == [1] * 5
    assert core_numbers(gen.path(4)).tolist() == [1] * 4


def test_core_numbers_rejects_oriented():
    from repro.core.orientation import orient_by_degree

    with pytest.raises(ValueError):
        core_numbers(orient_by_degree(gen.ring(5)))


def test_degeneracy_values():
    assert degeneracy(gen.complete_graph(6)) == 5
    assert degeneracy(gen.triangular_lattice(5, 5)) >= 2
    from repro.graphs import empty_graph

    assert degeneracy(empty_graph(3)) == 0


def test_degeneracy_order_bounds_outdegree(random_graph):
    """Orienting by the peel order bounds out-degrees by the degeneracy."""
    from repro.core.orientation import orient

    order = degeneracy_order(random_graph)
    og = orient(random_graph, order)
    assert og.max_degree() <= degeneracy(random_graph)


def test_degeneracy_orientation_counts_correctly(random_graph):
    from repro.core.edge_iterator import edge_iterator
    from repro.core.orientation import orient

    truth = edge_iterator(random_graph).triangles
    og = orient(random_graph, degeneracy_order(random_graph))
    assert edge_iterator(og).triangles == truth


def test_degeneracy_vs_degree_ordering_on_skewed():
    """On heavy-tailed graphs the degeneracy orientation produces no
    more oriented wedges than the sqrt(m) guarantee of degree order."""
    from repro.core.orientation import orient, orient_by_degree

    g = gen.rhg(2000, avg_degree=16, gamma=2.6, seed=9)
    d_deg = orient_by_degree(g).max_degree()
    d_degen = orient(g, degeneracy_order(g)).max_degree()
    assert d_degen <= d_deg * 1.5  # typically strictly smaller
    assert d_degen <= degeneracy(g)


# --------------------------------------------------------- distributed
def test_h_index_basic():
    assert h_index(np.array([3, 3, 3])) == 3
    assert h_index(np.array([5, 1])) == 1
    assert h_index(np.array([0, 0])) == 0
    assert h_index(np.empty(0, dtype=np.int64)) == 0
    assert h_index(np.array([10, 9, 8, 2])) == 3


@pytest.mark.parametrize("p", [1, 2, 4, 7])
def test_distributed_kcore_matches_sequential(p, random_graph):
    expected = core_numbers(random_graph)
    dist = distribute(random_graph, num_pes=p)
    res = Machine(p).run(kcore_program, dist)
    got = np.concatenate([v.cores for v in res.values])
    assert np.array_equal(got, expected)
    assert all(v.rounds == res.values[0].rounds for v in res.values)


def test_distributed_kcore_on_cliques():
    g = gen.disjoint_cliques(3, 5)
    dist = distribute(g, num_pes=3)
    res = Machine(3).run(kcore_program, dist)
    got = np.concatenate([v.cores for v in res.values])
    assert np.all(got == 4)
    # Fully local input: converges in two rounds (one sweep + check).
    assert res.values[0].rounds <= 3


def test_distributed_kcore_on_parallel_backend():
    from repro.net import ProcessMachine

    g = gen.gnm(300, 2000, seed=5)
    expected = core_numbers(g)
    dist = distribute(g, num_pes=3)
    res = ProcessMachine(3).run(kcore_program, dist)
    got = np.concatenate([v.cores for v in res.values])
    assert np.array_equal(got, expected)
