"""Tests for the hybrid threads x ranks model (Fig. 8)."""

import pytest

from repro.core.hybrid import (
    SIGMA_DEFAULT,
    run_hybrid,
    thread_speedup,
)
from repro.graphs import generators as gen


def test_speedup_monotone_but_sublinear():
    s = [thread_speedup(t) for t in (1, 2, 4, 6, 12)]
    assert s[0] == 1.0
    assert all(b > a for a, b in zip(s, s[1:]))
    assert s[-1] < 2.0  # the paper's ceiling


def test_speedup_calibrated_to_paper():
    assert thread_speedup(12, SIGMA_DEFAULT) == pytest.approx(1.67, abs=0.05)


def test_speedup_validates_threads():
    with pytest.raises(ValueError):
        thread_speedup(0)


@pytest.fixture(scope="module")
def orkut_like():
    return gen.rhg(2048, avg_degree=24, gamma=3.0, seed=11)


def test_run_hybrid_validates_divisibility(orkut_like):
    with pytest.raises(ValueError):
        run_hybrid(orkut_like, cores=12, threads=5)


def test_hybrid_t1_matches_flat_run(orkut_like):
    r = run_hybrid(orkut_like, cores=8, threads=1)
    assert r.ranks == 8
    assert r.global_time == pytest.approx(r.global_time)  # funnel factor 1 at t=1
    assert r.triangles > 0


def test_hybrid_reduces_volume_with_threads(orkut_like):
    """Fewer ranks => fewer cut edges => less communication volume."""
    flat = run_hybrid(orkut_like, cores=8, threads=1)
    hybrid = run_hybrid(orkut_like, cores=8, threads=4)
    assert hybrid.total_volume < flat.total_volume
    assert hybrid.triangles == flat.triangles


def test_hybrid_local_phase_speeds_up(orkut_like):
    flat = run_hybrid(orkut_like, cores=8, threads=1)
    hybrid = run_hybrid(orkut_like, cores=8, threads=4)
    # Same per-rank local work at 2 ranks would be ~4x of 8 ranks, but
    # the thread speedup divides it; the *ratio* local_time/volume must
    # show the speedup: compare against an unthreaded 2-rank run.
    unthreaded_2ranks = run_hybrid(orkut_like, cores=2, threads=1)
    assert hybrid.local_time < unthreaded_2ranks.local_time


def test_hybrid_global_phase_is_bottleneck(orkut_like):
    """The funneled comm thread makes hybrid configs no faster overall."""
    times = {
        t: run_hybrid(orkut_like, cores=8, threads=t).total_time for t in (1, 2, 4, 8)
    }
    # Paper: hybrid ends up slower than plain MPI (t=1 is the best).
    assert min(times, key=times.get) == 1
    # The funnel factor inflates the global phase beyond its share of
    # the volume: per-word global time grows with the thread count.
    r1 = run_hybrid(orkut_like, cores=8, threads=1)
    r2 = run_hybrid(orkut_like, cores=8, threads=2)
    assert r2.total_volume < r1.total_volume  # fewer ranks, less traffic
    per_word_1 = r1.global_time / max(r1.total_volume, 1)
    per_word_2 = r2.global_time / max(r2.total_volume, 1)
    assert per_word_2 > per_word_1


def test_total_time_is_sum_of_parts(orkut_like):
    r = run_hybrid(orkut_like, cores=4, threads=2)
    assert r.total_time == pytest.approx(r.local_time + r.global_time + r.other_time)
