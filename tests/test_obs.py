"""The observability layer: spans, exporters, profiler, bench pipeline.

The contract under test (docs/OBSERVABILITY.md, docs/BENCHMARKS.md):

* every ``ctx.span``/``ctx.phase`` region of a run becomes a
  :class:`~repro.net.trace.SpanRecord` with nesting depth and a
  compute/comm/wait/retransmit decomposition;
* the Chrome-trace exporter emits schema-valid, deterministic JSON;
* the phase profiler partitions the critical PE's clock (percentages
  sum to 100);
* BENCH records round-trip through JSON and the baseline diff gates
  exactly on simulated-cost regressions above the threshold.
"""

import json

import pytest

from repro.analysis.runner import run_algorithm
from repro.graphs import generators as gen
from repro.graphs.distributed import distribute
from repro.net.trace import SpanRecord, Tracer
from repro.obs import (
    BenchRecord,
    chrome_trace,
    chrome_trace_json,
    diff_records,
    format_diff,
    load_bench_json,
    profile_metrics,
    record_from_run,
    render_flamegraph,
    spans_csv,
    summary_csv,
    write_bench_json,
    write_chrome_trace,
)


@pytest.fixture(scope="module")
def small_dist():
    return distribute(gen.gnm(128, 1024, seed=3), num_pes=4)


@pytest.fixture(scope="module")
def ditric_run(small_dist):
    tracer = Tracer()
    res = run_algorithm(small_dist, "ditric", tracer=tracer)
    assert res.ok
    return res, tracer


# ----------------------------------------------------------------------
# Span records
# ----------------------------------------------------------------------
def test_every_pe_records_top_level_spans(ditric_run):
    res, _ = ditric_run
    for pe in res.metrics.per_pe:
        names = {s.name for s in pe.spans if s.depth == 0}
        assert {"preprocessing", "local", "global"} <= names


def test_span_decomposition_is_consistent(ditric_run):
    res, _ = ditric_run
    for s in res.metrics.merged_spans():
        assert s.end >= s.start
        assert s.compute_time >= 0.0
        parts = s.compute_time + s.comm_time + s.wait_time + s.retransmit_time
        assert parts == pytest.approx(s.elapsed, abs=1e-12)


def test_nested_spans_get_increasing_depth(small_dist):
    # cetric2 routes the global phase through the grid router, whose
    # hop spans open inside the 'global' span.
    res = run_algorithm(small_dist, "cetric2")
    nested = [s for s in res.metrics.merged_spans() if s.depth > 0]
    assert nested
    assert {s.name for s in nested} >= {"grid-row-hop", "grid-col-hop"}
    for s in nested:
        enclosing = [
            o
            for o in res.metrics.per_pe[s.rank].spans
            if o.depth < s.depth and o.start <= s.start and o.end >= s.end
        ]
        assert enclosing, f"nested span {s} has no enclosing span"


def test_phase_times_unchanged_by_span_recording(ditric_run):
    # phase() is now an alias of span(); the phase_times attribution
    # the rest of the repo depends on must be exactly the span sums.
    res, _ = ditric_run
    for pe in res.metrics.per_pe:
        by_name: dict[str, float] = {}
        for s in pe.spans:
            by_name[s.name] = by_name.get(s.name, 0.0) + s.elapsed
        for name, total in by_name.items():
            assert pe.phase_times[name] == pytest.approx(total)


# ----------------------------------------------------------------------
# Chrome-trace export
# ----------------------------------------------------------------------
def test_chrome_trace_schema(ditric_run):
    res, tracer = ditric_run
    trace = chrome_trace(res.metrics, tracer, run_name="unit")
    events = trace["traceEvents"]
    assert events, "trace must contain events"
    for ev in events:
        assert ev["ph"] in ("M", "X", "i")
        assert ev["pid"] == 0
        assert isinstance(ev["tid"], int) and 0 <= ev["tid"] < res.num_pes
        if ev["ph"] != "M":
            assert isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0
        if ev["ph"] == "X":
            assert ev["dur"] >= 0
            assert ev["cat"] == "span"
            assert ev["args"]["depth"] >= 0
        if ev["ph"] == "i":
            assert ev["s"] == "t"
    # Thread metadata names every PE.
    names = [
        e["args"]["name"] for e in events if e["ph"] == "M" and e["name"] == "thread_name"
    ]
    assert names == [f"PE {r}" for r in range(res.num_pes)]


def test_chrome_trace_round_trips_through_json(ditric_run, tmp_path):
    res, tracer = ditric_run
    path = write_chrome_trace(tmp_path / "trace.json", res.metrics, tracer)
    loaded = json.loads(path.read_text())
    assert loaded == chrome_trace(res.metrics, tracer)
    x_events = [e for e in loaded["traceEvents"] if e["ph"] == "X"]
    assert len(x_events) == len(res.metrics.merged_spans())
    # Events are time-sorted within each kind (viewer requirement).
    ts = [e["ts"] for e in x_events]
    assert ts == sorted(ts)


def test_chrome_trace_is_deterministic(small_dist):
    def one():
        tracer = Tracer()
        res = run_algorithm(small_dist, "ditric", tracer=tracer)
        return chrome_trace_json(res.metrics, tracer, run_name="det")

    assert one() == one()


def test_chrome_trace_without_tracer_has_no_instants(ditric_run):
    res, _ = ditric_run
    trace = chrome_trace(res.metrics)
    assert all(e["ph"] != "i" for e in trace["traceEvents"])


# ----------------------------------------------------------------------
# Phase profiler + renderers
# ----------------------------------------------------------------------
def test_profile_partitions_the_critical_clock(ditric_run):
    res, _ = ditric_run
    profile = profile_metrics(res.metrics)
    assert profile.makespan == pytest.approx(res.time)
    assert sum(profile.categories.values()) == pytest.approx(profile.makespan, rel=1e-9)
    assert sum(profile.percentages().values()) == pytest.approx(100.0, abs=1e-6)
    assert {"local", "global", "communication", "wait"} <= set(profile.categories)
    text = profile.format(title="unit")
    assert "unit" in text and "100.00 %" in text


def test_flamegraph_renders_every_pe(ditric_run):
    res, _ = ditric_run
    text = render_flamegraph(res.metrics, width=60)
    for rank in range(res.num_pes):
        assert f"PE {rank}" in text
    assert "d0 |" in text


def test_csv_exports(ditric_run):
    res, _ = ditric_run
    table = spans_csv(res.metrics)
    header, *rows = table.strip().split("\n")
    assert header.startswith("rank,name,depth,start_s")
    assert len(rows) == len(res.metrics.merged_spans())
    summary = summary_csv([res.as_dict()])
    assert "algorithm" in summary.splitlines()[0]
    assert "ditric" in summary


# ----------------------------------------------------------------------
# BENCH records and the regression gate
# ----------------------------------------------------------------------
def test_bench_record_round_trip(ditric_run, tmp_path):
    res, _ = ditric_run
    rec = record_from_run("unit:gnm", res, wall_seconds=0.5, graph="gnm", seed=3)
    assert rec.simulated_time == res.time
    assert rec.params["algorithm"] == "ditric"
    path = write_bench_json([rec], tmp_path / "BENCH_unit.json")
    (loaded,) = load_bench_json(path)
    assert loaded == rec


def test_bench_json_append_merges_by_key(tmp_path):
    a = BenchRecord(name="x", params={"p": 2}, simulated_time=1.0)
    b = BenchRecord(name="x", params={"p": 4}, simulated_time=2.0)
    path = write_bench_json([a, b], tmp_path / "BENCH_m.json")
    a2 = BenchRecord(name="x", params={"p": 2}, simulated_time=1.5)
    write_bench_json([a2], path)
    by_key = {r.key: r for r in load_bench_json(path)}
    assert len(by_key) == 2
    assert by_key[a.key].simulated_time == 1.5
    assert by_key[b.key].simulated_time == 2.0


def test_failed_runs_record_without_costs(small_dist):
    from repro.analysis.runner import memory_limited_spec

    spec = memory_limited_spec(small_dist, words_per_local_arc=0.001)
    res = run_algorithm(small_dist, "tric", spec=spec)
    assert not res.ok
    rec = record_from_run("unit:oom", res)
    assert rec.simulated_time is None
    assert rec.params["failed"] == "out-of-memory"


def test_diff_gate_passes_on_identical_and_trips_on_regression():
    base = [
        BenchRecord(name="s", params={"p": 4}, simulated_time=1.0),
        BenchRecord(name="s", params={"p": 8}, simulated_time=2.0),
    ]
    same = diff_records(base, base)
    assert same == []
    worse = [
        BenchRecord(name="s", params={"p": 4}, simulated_time=1.2),
        BenchRecord(name="s", params={"p": 8}, simulated_time=2.1),
    ]
    regs = diff_records(base, worse, threshold=0.15)
    assert [r.params["p"] for r in regs] == [4]
    assert regs[0].ratio == pytest.approx(1.2)
    text = format_diff(regs, compared=2)
    assert "1 regression(s)" in text and "+20.0%" in text


def test_diff_gate_ignores_unmatched_and_wall_only_records():
    base = [BenchRecord(name="old", params={}, simulated_time=1.0)]
    current = [
        BenchRecord(name="new", params={}, simulated_time=99.0),
        BenchRecord(name="old", params={}, wall_seconds=50.0),  # no simulated time
    ]
    assert diff_records(base, current) == []


def test_span_record_is_hashable_value_object():
    s = SpanRecord(rank=1, name="local", start=0.5, end=1.0, depth=0, comm_time=0.2)
    assert s.elapsed == pytest.approx(0.5)
    assert s.compute_time == pytest.approx(0.3)
    assert hash(s) == hash(
        SpanRecord(rank=1, name="local", start=0.5, end=1.0, depth=0, comm_time=0.2)
    )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_bench_single_run(tmp_path, capsys, monkeypatch):
    from repro.cli import main as repro_main

    monkeypatch.setenv("REPRO_BENCH_DATE", "unit")
    rc = repro_main(
        [
            "bench",
            "--algo",
            "ditric",
            "--gen",
            "gnm",
            "--size",
            "128",
            "--seed",
            "3",
            "-p",
            "4",
            "--out",
            str(tmp_path),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "critical path" in out and "100.00 %" in out
    bench_file = tmp_path / "BENCH_unit.json"
    assert bench_file.exists()
    (rec,) = load_bench_json(bench_file)
    assert rec.params["algorithm"] == "ditric"
    traces = list(tmp_path.glob("trace_*.json"))
    assert len(traces) == 1
    trace = json.loads(traces[0].read_text())
    assert any(e["ph"] == "X" for e in trace["traceEvents"])


def test_cli_bench_baseline_gate(tmp_path, capsys, monkeypatch):
    from repro.cli import main as repro_main

    monkeypatch.setenv("REPRO_BENCH_DATE", "unit")
    common = ["bench", "--algo", "ditric", "--gen", "gnm", "--size", "128",
              "--seed", "3", "-p", "4"]
    baseline_dir = tmp_path / "base"
    assert repro_main(common + ["--out", str(baseline_dir)]) == 0
    baseline = baseline_dir / "BENCH_unit.json"

    # Identical rerun: gate passes.
    rc = repro_main(
        common + ["--out", str(tmp_path / "a"), "--baseline", str(baseline)]
    )
    assert rc == 0
    assert "no simulated-cost regression" in capsys.readouterr().out

    # Synthetic 20% cost inflation: gate fails.
    rc = repro_main(
        common
        + ["--out", str(tmp_path / "b"), "--baseline", str(baseline),
           "--scale-time", "1.2"]
    )
    assert rc == 1
    assert "+20.0%" in capsys.readouterr().out
