"""Test helper: a pure-Python reference kernel backend.

The numba wheel is optional, so CI cannot rely on it for cross-backend
equivalence testing.  This module registers ``pymerge`` — per-pair
Python merge loops, the textbook COMPACT-FORWARD intersection — which
is slow but obviously correct and exercises exactly the contract a
compiled backend must satisfy (including the (pair, ascending element)
hit order).  Tests select it via ``use_backend("pymerge")``.
"""

import numpy as np

from repro.core.backends import KernelBackend, available_backends, register_backend


def _merge_pairs(a_concat, a_xadj, b_concat, b_xadj):
    for i in range(a_xadj.size - 1):
        ai, ae = int(a_xadj[i]), int(a_xadj[i + 1])
        bi, be = int(b_xadj[i]), int(b_xadj[i + 1])
        while ai < ae and bi < be:
            av, bv = a_concat[ai], b_concat[bi]
            if av == bv:
                yield i, av
                ai += 1
                bi += 1
            elif av < bv:
                ai += 1
            else:
                bi += 1


def _count(a_concat, a_xadj, b_concat, b_xadj, vertex_bound):
    counts = np.zeros(a_xadj.size - 1, dtype=np.int64)
    for i, _ in _merge_pairs(a_concat, a_xadj, b_concat, b_xadj):
        counts[i] += 1
    return counts


def _elements(a_concat, a_xadj, b_concat, b_xadj, vertex_bound):
    pairs, elems = [], []
    for i, v in _merge_pairs(a_concat, a_xadj, b_concat, b_xadj):
        pairs.append(i)
        elems.append(v)
    return (
        np.asarray(pairs, dtype=np.int64),
        np.asarray(elems, dtype=np.int64),
    )


def register_pymerge() -> str:
    """Register the reference backend (idempotent); returns its name.

    ``pymerge`` deliberately ships **no** fused ``count_elements``
    kernel, so it also exercises the dispatcher's derivation path
    (counts reconstructed from the hit stream via ``bincount``).
    """
    if "pymerge" not in available_backends():
        register_backend(
            "pymerge", lambda: KernelBackend("pymerge", _count, _elements)
        )
    return "pymerge"


def backend_probe_program(ctx, marker):
    """SPMD program reporting the backend each worker actually resolved.

    Module-level (hence picklable by reference) so it runs under the
    ``spawn`` start method, where the worker re-imports this module —
    ``multiprocessing`` propagates ``sys.path``, and the pymerge
    registration below re-runs inside the fresh interpreter before the
    first dispatch.
    """
    register_pymerge()
    from repro.core.backends import get_backend

    yield
    return (marker, get_backend().name)
