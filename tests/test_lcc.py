"""Tests for local clustering coefficients (Section IV-E)."""

import numpy as np
import pytest

from repro.core.engine import EngineConfig
from repro.core.lcc import lcc_from_delta, lcc_program, lcc_sequential
from repro.graphs import distribute
from repro.graphs import generators as gen
from repro.net import Machine


def test_lcc_from_delta_formula():
    delta = np.array([1, 0, 3])
    deg = np.array([2, 1, 4])
    lcc = lcc_from_delta(delta, deg)
    assert lcc[0] == pytest.approx(1.0)  # 2*1/(2*1)
    assert lcc[1] == 0.0  # degree < 2
    assert lcc[2] == pytest.approx(6.0 / 12.0)


def test_lcc_sequential_complete_graph():
    assert np.allclose(lcc_sequential(gen.complete_graph(6)), 1.0)


def test_lcc_sequential_matches_networkx(random_graph):
    import networkx as nx

    lcc = lcc_sequential(random_graph)
    nxg = random_graph.to_networkx()
    expected = nx.clustering(nxg)
    assert np.allclose(lcc, [expected[v] for v in range(random_graph.num_vertices)])


def test_lcc_range(random_graph):
    lcc = lcc_sequential(random_graph)
    assert np.all(lcc >= 0.0) and np.all(lcc <= 1.0)


@pytest.mark.parametrize("p", [1, 2, 3, 6])
@pytest.mark.parametrize("contraction", [True, False])
def test_distributed_lcc_matches_sequential(p, contraction, random_graph):
    g = random_graph
    expected = lcc_sequential(g)
    dist = distribute(g, num_pes=p)
    res = Machine(p).run(lcc_program, dist, EngineConfig(contraction=contraction))
    got = np.concatenate([v.lcc for v in res.values])
    assert np.allclose(got, expected)


@pytest.mark.parametrize("p", [2, 4])
def test_distributed_delta_sums_to_three_t(p):
    g = gen.rmat(8, 8, seed=3)
    from repro.core.edge_iterator import edge_iterator

    truth = edge_iterator(g).triangles
    dist = distribute(g, num_pes=p)
    res = Machine(p).run(lcc_program, dist, EngineConfig(contraction=True))
    total_delta = sum(int(v.delta.sum()) for v in res.values)
    assert total_delta == 3 * truth
    assert res.values[0].triangles_total == truth


def test_distributed_lcc_indirect_variant():
    g = gen.rgg2d(600, expected_edges=5000, seed=4)
    expected = lcc_sequential(g)
    dist = distribute(g, num_pes=9)
    res = Machine(9).run(
        lcc_program, dist, EngineConfig(contraction=True, indirect=True)
    )
    got = np.concatenate([v.lcc for v in res.values])
    assert np.allclose(got, expected)


def test_lcc_on_triangle_free_graph():
    g = gen.grid2d(6, 6)
    dist = distribute(g, num_pes=4)
    res = Machine(4).run(lcc_program, dist, EngineConfig(contraction=True))
    for v in res.values:
        assert np.all(v.lcc == 0.0)
        assert np.all(v.delta == 0)


def test_lcc_ghost_delta_exchange_needed():
    """A triangle whose corners span PEs: every owner gets credit."""
    from repro.graphs import from_edges

    # Triangle 0-3-5 with p=3: corners on PEs 0,1,2 (type 3).
    g = from_edges(np.array([[0, 3], [3, 5], [0, 5]]), num_vertices=6)
    dist = distribute(g, num_pes=3)
    res = Machine(3).run(lcc_program, dist, EngineConfig(contraction=True))
    delta = np.concatenate([v.delta for v in res.values])
    assert delta.tolist() == [1, 0, 0, 1, 0, 1]
