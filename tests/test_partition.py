"""Unit tests for 1D ID partitioning."""

import numpy as np
import pytest

from repro.graphs import partition_by_edges, partition_by_vertices
from repro.graphs.generators import rmat, star
from repro.graphs.partition import Partition


def test_even_split():
    p = partition_by_vertices(12, 4)
    assert p.num_pes == 4
    assert [p.owned_count(i) for i in range(4)] == [3, 3, 3, 3]


def test_uneven_split_front_loaded():
    p = partition_by_vertices(10, 4)
    assert [p.owned_count(i) for i in range(4)] == [3, 3, 2, 2]
    assert p.num_vertices == 10


def test_more_pes_than_vertices():
    p = partition_by_vertices(3, 8)
    counts = [p.owned_count(i) for i in range(8)]
    assert sum(counts) == 3
    assert max(counts) == 1


def test_zero_vertices():
    p = partition_by_vertices(0, 3)
    assert p.num_vertices == 0
    assert all(p.owned_count(i) == 0 for i in range(3))


def test_rank_of_vectorized():
    p = partition_by_vertices(10, 3)  # [0,4), [4,7), [7,10)
    ranks = p.rank_of(np.arange(10))
    assert ranks.tolist() == [0, 0, 0, 0, 1, 1, 1, 2, 2, 2]
    assert p.rank_of_one(4) == 1


def test_rank_of_rejects_out_of_range():
    p = partition_by_vertices(5, 2)
    with pytest.raises(ValueError):
        p.rank_of(np.array([5]))
    with pytest.raises(ValueError):
        p.rank_of(np.array([-1]))


def test_is_local():
    p = partition_by_vertices(10, 2)
    assert p.is_local(0, np.array([0, 4, 5])).tolist() == [True, True, False]


def test_global_order_property():
    """rank(v) < rank(w) implies v < w (Section II-B)."""
    p = partition_by_vertices(100, 7)
    v = np.arange(100)
    r = p.rank_of(v)
    assert np.all(np.diff(r) >= 0)


def test_invalid_bounds_rejected():
    with pytest.raises(ValueError):
        Partition(np.array([1, 5]))
    with pytest.raises(ValueError):
        Partition(np.array([0, 5, 3]))
    with pytest.raises(ValueError):
        Partition(np.array([0]))


def test_partition_by_edges_balances_arcs():
    g = rmat(10, 16, seed=5)
    p = partition_by_edges(g, 8)
    arcs = [int(g.xadj[p.owner_range(i)[1]] - g.xadj[p.owner_range(i)[0]]) for i in range(8)]
    assert sum(arcs) == g.num_arcs
    # Each PE within 2x of the mean despite skew (hubs may force slack).
    mean = g.num_arcs / 8
    assert max(arcs) < 2.5 * mean


def test_partition_by_edges_star_degenerate():
    """One hub holding almost all arcs: boundaries stay monotone."""
    g = star(100)
    p = partition_by_edges(g, 4)
    assert p.num_vertices == 100
    assert np.all(np.diff(p.bounds) >= 0)


def test_partition_single_pe():
    p = partition_by_vertices(5, 1)
    assert p.owner_range(0) == (0, 5)
