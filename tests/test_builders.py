"""Unit tests for graph construction and cleaning."""

import numpy as np
import pytest

from repro.graphs import (
    canonical_edges,
    empty_graph,
    from_edges,
    from_neighborhoods,
    from_networkx,
    from_scipy,
    induced_subgraph,
    relabel,
    remove_isolated_vertices,
)
from repro.graphs.generators import complete_graph, ring


def test_canonical_edges_dedups_and_orients():
    e = np.array([[1, 0], [0, 1], [0, 1], [2, 2], [3, 2]])
    canon = canonical_edges(e)
    assert canon.tolist() == [[0, 1], [2, 3]]


def test_canonical_edges_empty():
    assert canonical_edges(np.empty((0, 2), dtype=np.int64)).shape == (0, 2)


def test_canonical_edges_keeps_self_loops_when_asked():
    e = np.array([[2, 2]])
    assert canonical_edges(e, drop_self_loops=False).tolist() == [[2, 2]]


def test_canonical_edges_rejects_bad_shape():
    with pytest.raises(ValueError):
        canonical_edges(np.array([[1, 2, 3]]))


def test_from_edges_symmetrizes_and_sorts():
    g = from_edges(np.array([[2, 0], [1, 2]]))
    assert g.num_vertices == 3
    assert g.num_edges == 2
    assert list(g.neighbors(2)) == [0, 1]
    assert g.check_symmetric()
    assert g.check_sorted()


def test_from_edges_handles_duplicates_and_loops():
    g = from_edges(np.array([[0, 1], [1, 0], [0, 0], [0, 1]]))
    assert g.num_edges == 1


def test_from_edges_respects_num_vertices():
    g = from_edges(np.array([[0, 1]]), num_vertices=5)
    assert g.num_vertices == 5
    assert g.degree(4) == 0
    with pytest.raises(ValueError):
        from_edges(np.array([[0, 9]]), num_vertices=5)


def test_from_neighborhoods_roundtrip():
    g = from_neighborhoods([[1, 2], [0, 2], [0, 1]])
    assert g.num_edges == 3
    with pytest.raises(ValueError):
        from_neighborhoods([[1], []])  # not symmetric
    with pytest.raises(ValueError):
        from_neighborhoods([[0]])  # self loop


def test_from_scipy_and_networkx():
    base = complete_graph(5)
    g1 = from_scipy(base.to_scipy())
    g2 = from_networkx(base.to_networkx())
    assert g1.num_edges == g2.num_edges == 10


def test_from_networkx_requires_compact_ids():
    import networkx as nx

    g = nx.Graph()
    g.add_edge("a", "b")
    with pytest.raises(ValueError):
        from_networkx(g)


def test_empty_graph():
    g = empty_graph(7)
    assert g.num_vertices == 7
    assert g.num_edges == 0


def test_remove_isolated_vertices():
    g = from_edges(np.array([[0, 3], [3, 5]]), num_vertices=8)
    cleaned, old_ids = remove_isolated_vertices(g)
    assert cleaned.num_vertices == 3
    assert cleaned.num_edges == 2
    assert old_ids.tolist() == [0, 3, 5]


def test_remove_isolated_noop_when_none():
    g = ring(5)
    cleaned, old_ids = remove_isolated_vertices(g)
    assert cleaned.num_vertices == 5
    assert old_ids.tolist() == list(range(5))


def test_relabel_preserves_structure():
    g = complete_graph(5)
    perm = np.array([4, 3, 2, 1, 0])
    h = relabel(g, perm)
    assert h.num_edges == g.num_edges
    # K5 is invariant under relabeling.
    assert np.array_equal(h.xadj, g.xadj)


def test_relabel_rejects_non_permutation():
    g = ring(4)
    with pytest.raises(ValueError):
        relabel(g, np.array([0, 0, 1, 2]))
    with pytest.raises(ValueError):
        relabel(g, np.array([0, 1, 2]))


def test_induced_subgraph():
    g = complete_graph(6)
    sub, ids = induced_subgraph(g, np.array([1, 3, 5]))
    assert ids.tolist() == [1, 3, 5]
    assert sub.num_vertices == 3
    assert sub.num_edges == 3  # triangle


def test_induced_subgraph_out_of_range():
    with pytest.raises(ValueError):
        induced_subgraph(ring(4), np.array([9]))
