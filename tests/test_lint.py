"""The SPMD protocol linter: rule corpus, suppression, CLI, self-check.

Each known-bad snippet must trigger *exactly* its rule (no more, no
less), each good twin must be clean, and the repo's own ``src`` tree
must lint clean — the linter guards the codebase it lives in.
"""

from pathlib import Path

import pytest

from repro.lint import RULES, lint_paths, lint_source
from repro.lint.cli import main as lint_main

SRC_ROOT = Path(__file__).resolve().parent.parent / "src"

# One known-bad snippet per rule; the test asserts the exact code set.
BAD = {
    "R1": """
def prog(ctx):
    barrier(ctx)
    yield
""",
    "R2": """
def prog(ctx):
    if ctx.rank == 0:
        yield from barrier(ctx)
""",
    "R3": """
def prog(ctx):
    partners = {3, 1, 2}
    for dest in partners:
        ctx.send(dest, "t", None, 1)
    yield
""",
    "R4": """
def prog(ctx):
    ctx.send(1, "t", None)
    yield
""",
    "R5": """
@fault_tolerant
def prog(ctx):
    ctx.send(1, "t", None, 4)
    yield
""",
    "R6": """
def prog(ctx):
    ctx.span("local")
    yield
""",
    "R7": """
def prog(ctx):
    for v, nbh in zip(vertices.tolist(), neighborhoods):
        router.post(1, Record(vertex=v, neighbors=nbh))
        ctx.charge(1)
    yield
""",
    "R13": """
def prog(ctx):
    ctx.metrics.clock += 5.0
    yield
""",
    "R14": """
def launch(machine_args):
    return Machine(4, recovery="localized", checkpoint_store=CheckpointStore(4))
""",
}

GOOD = {
    "R1": """
def prog(ctx):
    yield from barrier(ctx)
""",
    "R2": """
def prog(ctx):
    yield from barrier(ctx)
    if ctx.rank == 0:
        ctx.charge(10)
""",
    "R3": """
def prog(ctx):
    partners = {3, 1, 2}
    for dest in sorted(partners):
        ctx.send(dest, "t", None, 1)
    yield
""",
    "R4": """
def prog(ctx):
    ctx.send(1, "t", None, 7)
    yield
""",
    "R5": """
@fault_tolerant
def prog(ctx):
    reliable_send(ctx, 1, "t", None, 4)
    yield
""",
    "R6": """
def prog(ctx):
    with ctx.span("local"):
        yield
""",
    "R7": """
def prog(ctx):
    router.post_many(dst_ranks, vertices, targets, xadj, neighbors)
    ctx.charge(1)
    yield
""",
    "R13": """
def prog(ctx):
    ctx.charge_time(5.0)
    clock = 5.0
    yield
""",
    "R14": """
def launch(machine_args):
    return Machine(4, recovery="localized", checkpoint_store=BuddyCheckpointStore(4))
""",
}


@pytest.mark.parametrize("code", sorted(BAD))
def test_bad_snippet_triggers_exactly_its_rule(code):
    findings = lint_source(BAD[code], f"bad_{code}.py")
    assert [f.code for f in findings] == [code]


@pytest.mark.parametrize("code", sorted(GOOD))
def test_good_twin_is_clean(code):
    assert lint_source(GOOD[code], f"good_{code}.py") == []


def test_r1_catches_dropped_ctx_recv_and_finalize():
    src = """
def prog(ctx):
    msg = ctx.recv("tag")
    records = queue.finalize()
    yield
"""
    findings = lint_source(src)
    assert [f.code for f in findings] == ["R1", "R1"]
    assert "ctx.recv" in findings[0].message


def test_r2_sees_through_rank_aliases_and_loops():
    src = """
def prog(ctx):
    me = ctx.rank
    while me > 0:
        yield from barrier(ctx)
"""
    assert [f.code for f in lint_source(src)] == ["R2"]
    src_for = """
def prog(ctx):
    for _ in range(ctx.rank):
        yield from barrier(ctx)
"""
    assert [f.code for f in lint_source(src_for)] == ["R2"]


def test_r3_flags_dict_iteration_with_sends():
    src = """
class Q:
    def flush(self):
        for dest, recs in self._buffers.items():
            self.ctx.send(dest, self.tag, recs, 4)
"""
    findings = lint_source(src)
    assert [f.code for f in findings] == ["R3"]
    assert "sorted" in findings[0].message


def test_r4_flags_wall_clock_and_unseeded_rng():
    src = """
import time, random
import numpy as np

def prog(ctx):
    t0 = time.time()
    x = random.random()
    y = np.random.randint(0, 4)
    yield
"""
    assert [f.code for f in lint_source(src)] == ["R4", "R4", "R4"]


def test_r4_only_applies_inside_spmd_code():
    src = """
import time

def wall_clock_harness():
    return time.perf_counter()
"""
    assert lint_source(src) == []


def test_noqa_suppresses_by_code():
    src = """
def prog(ctx):
    if ctx.rank == 0:
        yield from barrier(ctx)  # noqa: R2
"""
    assert lint_source(src) == []
    # A noqa for a different rule does not suppress.
    wrong = src.replace("noqa: R2", "noqa: R1")
    assert [f.code for f in lint_source(wrong)] == ["R2"]
    # Bare noqa silences everything on the line.
    bare = src.replace("noqa: R2", "noqa")
    assert lint_source(bare) == []


def test_syntax_error_reported_as_r0():
    findings = lint_source("def broken(:\n")
    assert [f.code for f in findings] == ["R0"]


def test_finding_format_is_compiler_style():
    (finding,) = lint_source(BAD["R1"], "x.py")
    text = finding.format()
    assert text.startswith("x.py:3:")
    assert " R1 " in text


def test_rule_catalogue_is_complete():
    assert set(RULES) == {f"R{i}" for i in range(15)}


def test_r5_only_applies_to_marked_programs():
    # The same direct send is legal in an unmarked program.
    src = """
def prog(ctx):
    ctx.send(1, "t", None, 4)
    yield
"""
    assert lint_source(src) == []
    # The marker is recognized as a dotted attribute too.
    dotted = """
@reliable.fault_tolerant
def prog(ctx):
    ctx.send(1, "t", None, 4)
    yield
"""
    assert [f.code for f in lint_source(dotted)] == ["R5"]


def test_r5_noqa_escape():
    src = """
@fault_tolerant
def prog(ctx):
    ctx.send(1, "t", None, 4)  # noqa: R5
    yield
"""
    assert lint_source(src) == []


def test_r6_flags_span_assigned_instead_of_entered():
    src = """
def prog(ctx):
    s = ctx.phase("local")
    yield
"""
    findings = lint_source(src)
    assert [f.code for f in findings] == ["R6"]
    assert "with" in findings[0].message


def test_r6_flags_computed_and_rank_dependent_labels():
    fstring = """
def prog(ctx):
    with ctx.span(f"local-{ctx.rank}"):
        yield
"""
    assert [f.code for f in lint_source(fstring)] == ["R6"]
    variable = """
def prog(ctx, label):
    with ctx.span(label):
        yield
"""
    assert [f.code for f in lint_source(variable)] == ["R6"]
    keyword = """
def prog(ctx):
    with ctx.span(name="global" + "x"):
        yield
"""
    assert [f.code for f in lint_source(keyword)] == ["R6"]


def test_r6_does_not_flag_non_ctx_receivers():
    # The tracer's phase() *event recorder* is not a span context
    # manager; only the PEContext handle is policed.
    src = """
def record(tracer, rank, t):
    tracer.phase(rank, "local", t, t + 1.0)
"""
    assert lint_source(src) == []


def test_r6_accepts_with_as_binding():
    src = """
def prog(ctx):
    with ctx.span("contraction") as s:
        yield
"""
    assert lint_source(src) == []


def test_r7_flags_all_array_unpacking_idioms():
    # A Record bound to a name inside the loop body counts as the payload.
    named = """
def prog(ctx):
    for i in range(len(vertices)):
        rec = Record(vertex=vertices[i], neighbors=adj[i])
        queue.post(int(dst[i]), rec)
        ctx.charge(1)
    yield
"""
    assert [f.code for f in lint_source(named)] == ["R7"]
    sized = """
def prog(ctx):
    for i in range(dst.size):
        queue.post(int(dst[i]), net.Record(vertex=v[i], neighbors=a[i]))
        ctx.charge(1)
    yield
"""
    assert [f.code for f in lint_source(sized)] == ["R7"]
    enumerated = """
def prog(ctx):
    for i, v in enumerate(vs.tolist()):
        queue.post(1, Record(vertex=v, neighbors=adj[i]))
        ctx.charge(1)
    yield
"""
    assert [f.code for f in lint_source(enumerated)] == ["R7"]


def test_r7_exempts_opaque_payloads_and_non_spmd_helpers():
    # AMQ-style loops post an opaque per-destination object (a Bloom
    # filter has no frameable array batch) — not flagged.
    amq = """
def prog(ctx):
    for start, end in zip(run_starts.tolist(), run_ends.tolist()):
        rec = AmqRecord(vertex=1, targets=c_dst[start:end], amq=amq)
        router.post(1, rec)
        ctx.charge(1)
    yield
"""
    assert lint_source(amq) == []
    # The net-layer post_items fan-out helper never touches ctx, so it
    # is outside SPMD scope and R7 does not apply.
    helper = """
def post_items(self, dest_ranks, records):
    for dest, record in zip(dest_ranks.tolist(), records):
        self.post(int(dest), record)
"""
    assert lint_source(helper) == []
    # Loops over plain Python iterables are fine even with Record posts.
    plain = """
def prog(ctx):
    for dest, rec in pending:
        queue.post(dest, Record(vertex=rec[0], neighbors=rec[1]))
        ctx.charge(1)
    yield
"""
    assert lint_source(plain) == []


def test_r7_noqa_escape():
    src = """
def prog(ctx):
    for v in vs.tolist():
        queue.post(1, Record(vertex=v, neighbors=empty))  # noqa: R7
        ctx.charge(1)
    yield
"""
    assert lint_source(src) == []


def test_r13_flags_time_keyed_and_private_engine_state():
    # Rewinding a message's send_time forges the network's time ordering.
    send_time = """
def prog(ctx):
    msg = yield from ctx.recv("t")
    msg.send_time = 0.0
    yield
"""
    assert [f.code for f in lint_source(send_time)] == ["R13"]
    # Reaching into the context's private mailbox bypasses delivery
    # accounting (and the engine's wake hooks).
    inbox = """
def prog(ctx):
    ctx._inbox["t"] = []
    yield
"""
    assert [f.code for f in lint_source(inbox)] == ["R13"]
    # Aliased contexts are still engine state when reached through ctx.
    nested = """
def prog(ctx):
    ctx.machine.network.links[0].busy_until = 99.0
    yield
"""
    assert [f.code for f in lint_source(nested)] == ["R13"]


def test_r13_only_polices_spmd_writes():
    # The engine itself (self-rooted writes, no ctx) owns these fields.
    engine = """
class SimEngine:
    def advance(self, t):
        self.clock = t
"""
    assert lint_source(engine) == []
    # Reads of engine state are fine; only writes are policed.
    reads = """
def prog(ctx):
    elapsed = ctx.metrics.clock
    ctx.charge(1)
    yield
"""
    assert lint_source(reads) == []
    # Plain locals that happen to be named like time fields are fine.
    local = """
def prog(ctx):
    clock = 0.0
    clock += 1.0
    ctx.charge(1)
    yield
"""
    assert lint_source(local) == []


def test_r13_noqa_escape():
    src = """
def prog(ctx):
    ctx.metrics.clock += 5.0  # noqa: R13 -- test fixture resets the clock
    yield
"""
    assert lint_source(src) == []


def test_r14_flags_restored_state_mutated_without_recheckpoint():
    append = """
@fault_tolerant
def prog(ctx):
    state = ctx.restore("local")
    state.append(1)
    yield
"""
    assert [f.code for f in lint_source(append)] == ["R14"]
    item_write = """
@fault_tolerant
def prog(ctx):
    state = ctx.restore("local")
    state["count"] = 7
    yield
"""
    assert [f.code for f in lint_source(item_write)] == ["R14"]


def test_r14_accepts_recheckpoint_and_canonical_restore():
    recheckpointed = """
@fault_tolerant
def prog(ctx):
    state = ctx.restore("global")
    if state is None:
        state = fresh_state()
    state.append(1)
    ctx.checkpoint("global", state)
    yield
"""
    assert lint_source(recheckpointed) == []
    canonical = """
@fault_tolerant
def prog(ctx):
    state = ctx.restore("local")
    if state is None:
        state = fresh_state()
        ctx.checkpoint("local", state)
    yield
"""
    assert lint_source(canonical) == []


def test_r14_only_polices_fault_tolerant_programs():
    unmarked = """
def prog(ctx):
    state = ctx.restore("local")
    state.append(1)
    yield
"""
    assert lint_source(unmarked) == []


def test_r14_machine_shape_needs_all_three_ingredients():
    # localized + auto-attached buddy store: fine.
    implicit = """
def launch():
    return Machine(4, recovery="localized")
"""
    assert lint_source(implicit) == []
    # plain store under global restart: fine.
    global_store = """
def launch():
    return Machine(4, checkpoint_store=CheckpointStore(4))
"""
    assert lint_source(global_store) == []
    # a store the rule cannot classify (a variable): not flagged.
    opaque = """
def launch(store):
    return Machine(4, recovery="localized", checkpoint_store=store)
"""
    assert lint_source(opaque) == []


def test_r14_noqa_escape():
    src = """
def launch():
    return Machine(4, recovery="localized", checkpoint_store=CheckpointStore(4))  # noqa: R14 -- exercising the runtime rejection
"""
    assert lint_source(src) == []


def test_repo_src_tree_lints_clean():
    findings = lint_paths([SRC_ROOT])
    assert findings == [], "\n".join(f.format() for f in findings)


def test_cli_exit_status_and_output(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(BAD["R1"])
    good = tmp_path / "good.py"
    good.write_text(GOOD["R1"])

    assert lint_main([str(good)]) == 0
    assert lint_main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "R1" in out and "bad.py:3" in out

    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("R1", "R2", "R3", "R4"):
        assert code in out


def test_cli_unreadable_path_is_an_r0_finding(tmp_path, capsys):
    # An unreadable file is reported as a finding, not raised — one
    # broken path must not abort a whole-tree lint.
    missing = tmp_path / "no_such_file.py"
    assert lint_main([str(missing)]) == 1
    out = capsys.readouterr().out
    assert "R0" in out and "no_such_file.py" in out and "cannot read" in out


def test_cli_lints_directories_recursively(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "mod.py").write_text(BAD["R2"])
    cache = pkg / "__pycache__"
    cache.mkdir()
    (cache / "junk.py").write_text(BAD["R1"])  # must be skipped
    findings = lint_paths([tmp_path])
    assert [f.code for f in findings] == ["R2"]


def test_repro_cli_lint_subcommand(tmp_path, capsys):
    from repro.cli import main as repro_main

    bad = tmp_path / "bad.py"
    bad.write_text(BAD["R3"])
    assert repro_main(["lint", str(bad)]) == 1
    assert "R3" in capsys.readouterr().out
    assert repro_main(["lint", str(SRC_ROOT / "repro" / "net")]) == 0
