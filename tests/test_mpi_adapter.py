"""Tests for the MPI adapter.

The adapter's transport needs an MPI runtime (skipped when mpi4py is
absent — as in this offline environment); the pure logic (tag codec,
argument validation, lazy import) is tested unconditionally.
"""

import pytest

from repro.net.mpi import TagCodec


def test_tag_codec_deterministic():
    a, b = TagCodec(), TagCodec()
    tags = ["nbh", ("barrier", 1, 0), ("deg-xchg", 2), "lcc-nbh"]
    assert [a.encode(t) for t in tags] == [b.encode(t) for t in tags]


def test_tag_codec_range():
    codec = TagCodec()
    for t in ("x", ("y", 1), ("z", 2, 3), 42):
        code = codec.encode(t)
        assert 1 <= code <= TagCodec.TAG_UB


def test_tag_codec_idempotent():
    codec = TagCodec()
    assert codec.encode("nbh") == codec.encode("nbh")


def test_tag_codec_distinguishes_tags():
    codec = TagCodec()
    codes = {codec.encode(("barrier", 1, r)) for r in range(32)}
    assert len(codes) == 32  # no accidental collisions in a typical run


def test_mpi_run_requires_mpi4py():
    pytest.importorskip("mpi4py", reason="no MPI runtime in this environment")
    # If mpi4py ever becomes available, run a single-rank smoke test.
    from mpi4py import MPI

    from repro.core.engine import EngineConfig, counting_program
    from repro.graphs import distribute, generators
    from repro.net.mpi import mpi_run

    if MPI.COMM_WORLD.Get_size() != 1:
        pytest.skip("smoke test is single-rank")
    g = generators.ring(12)
    dist = distribute(g, num_pes=1)
    value, metrics = mpi_run(counting_program, dist, EngineConfig())
    assert value.triangles_total == 0


def test_mpi_world_size_mismatch_detected():
    """Validation path exercised with a stub comm (no mpi4py needed for
    the check itself, but mpi_run imports it first — so only run the
    stub check when the import succeeds)."""
    mpi4py = pytest.importorskip("mpi4py")
    from repro.core.engine import EngineConfig, counting_program
    from repro.graphs import distribute, generators
    from repro.net.mpi import mpi_run

    g = generators.ring(12)
    dist = distribute(g, num_pes=4)  # wrong world size for 1 rank
    with pytest.raises(ValueError):
        mpi_run(counting_program, dist, EngineConfig())
