"""Runtime SPMD protocol verification (``Machine(protocol_check=True)``).

The static half of the contract is enforced by ``repro.lint`` (see
``tests/test_lint.py``); these tests cover the runtime half: collective
fingerprinting, message conservation at teardown, and the upgraded
deadlock diagnostics.
"""

import pytest

from repro.net import (
    DeadlockError,
    Machine,
    ProtocolError,
    allreduce,
    barrier,
    sparse_alltoall,
)


def _divergent_program(ctx):
    """The canonical protocol bug: collective under rank-dependent flow."""
    if ctx.rank == 0:
        yield from barrier(ctx)
    else:
        yield from allreduce(ctx, 1, lambda a, b: a + b)
    return None


def test_rank_divergent_collective_is_caught():
    with pytest.raises(ProtocolError) as exc:
        Machine(2, protocol_check=True).run(_divergent_program)
    msg = str(exc.value)
    assert "divergence" in msg
    assert "barrier" in msg
    assert "reduce" in msg
    assert "rank 0" in msg and "rank 1" in msg


@pytest.mark.parametrize("p", [2, 3, 4, 8])
def test_divergence_caught_at_any_scale(p):
    with pytest.raises(ProtocolError):
        Machine(p, protocol_check=True).run(_divergent_program)


def test_divergence_names_the_entry_position():
    def prog(ctx):
        yield from barrier(ctx)  # entry #1: identical everywhere
        if ctx.rank == 0:
            yield from barrier(ctx)  # entry #2 diverges
        else:
            yield from allreduce(ctx, 1, lambda a, b: a + b)
        return None

    with pytest.raises(ProtocolError, match="#2"):
        Machine(2, protocol_check=True).run(prog)


def test_matching_collectives_pass():
    def prog(ctx):
        yield from barrier(ctx)
        total = yield from allreduce(ctx, ctx.rank, lambda a, b: a + b)
        msgs = yield from sparse_alltoall(
            ctx, [((ctx.rank + 1) % ctx.num_pes, "x", 1)]
        )
        return (total, len(msgs))

    res = Machine(4, protocol_check=True).run(prog)
    assert res.values == [(6, 1)] * 4


def test_unreceived_message_fails_conservation():
    def prog(ctx):
        if ctx.rank == 0:
            ctx.send(1, "orphan", None, 1)
        yield
        return None

    with pytest.raises(ProtocolError) as exc:
        Machine(2, protocol_check=True).run(prog)
    msg = str(exc.value)
    assert "conservation" in msg
    assert "orphan" in msg
    assert "1 sent, 0 received" in msg


def test_conservation_not_enforced_without_opt_in():
    def prog(ctx):
        if ctx.rank == 0:
            ctx.send(1, "orphan", None, 1)
        yield
        return ctx.rank

    res = Machine(2, protocol_check=False).run(prog)
    assert res.values == [0, 1]


def test_protocol_check_default_reads_environment(monkeypatch):
    monkeypatch.setenv("REPRO_PROTOCOL_CHECK", "1")
    assert Machine(2).protocol_check is True
    monkeypatch.setenv("REPRO_PROTOCOL_CHECK", "0")
    assert Machine(2).protocol_check is False
    monkeypatch.delenv("REPRO_PROTOCOL_CHECK")
    assert Machine(2).protocol_check is False
    # An explicit argument always wins over the environment.
    monkeypatch.setenv("REPRO_PROTOCOL_CHECK", "1")
    assert Machine(2, protocol_check=False).protocol_check is False


# ---------------------------------------------------------------------------
# Upgraded DeadlockError diagnostics
# ---------------------------------------------------------------------------


def test_deadlock_reports_blocked_ranks_and_tags():
    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.recv("never-sent")
        return None

    with pytest.raises(DeadlockError) as exc:
        Machine(2).run(prog)
    msg = str(exc.value)
    assert "waiting PEs: [0]" in msg
    assert "rank 0" in msg
    assert "never-sent" in msg
    assert "blocked on recv" in msg


def test_deadlock_reports_pending_message_census():
    def prog(ctx):
        if ctx.rank == 1:
            ctx.send(0, "wrong-tag", "hello", 3)
            return None
        yield from ctx.recv("right-tag")
        return None

    with pytest.raises(DeadlockError) as exc:
        Machine(2).run(prog)
    msg = str(exc.value)
    # Rank 0 blocks on the tag it wants, while the census shows the
    # message that actually arrived — the classic tag-mismatch smoking gun.
    assert "right-tag" in msg
    assert "wrong-tag" in msg
    assert "1 message(s) pending machine-wide" in msg


def test_deadlock_census_includes_finished_holders():
    def prog(ctx):
        if ctx.rank == 0:
            # Finishes immediately but keeps an undelivered message.
            return None
        if ctx.rank == 1:
            ctx.send(0, "stranded", None, 1)
            yield from ctx.recv("never")
        return None

    with pytest.raises(DeadlockError) as exc:
        Machine(2).run(prog)
    msg = str(exc.value)
    assert "finished but holds undelivered messages" in msg
    assert "stranded" in msg


def test_engine_runs_clean_under_protocol_check():
    """End-to-end: a real counting run satisfies the whole contract."""
    from repro.core.cetric import CETRIC_CONFIG
    from repro.core.engine import counting_program
    from repro.graphs import distribute
    from repro.graphs import generators as gen

    g = gen.complete_graph(8)
    dist = distribute(g, num_pes=4)
    res = Machine(4, protocol_check=True).run(
        counting_program, dist, CETRIC_CONFIG
    )
    assert res.values[0].triangles_total == 56
