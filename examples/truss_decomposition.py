"""Triangle enumeration in action: k-truss decomposition.

Section IV-E notes that since every triangle is found exactly once the
algorithms generalize to triangle *enumeration*.  This example uses
the distributed enumeration to drive a classic downstream analysis:
the k-truss (every edge of a k-truss supports >= k-2 triangles), which
dense-community miners build on.

The triangles are enumerated on a simulated 8-PE machine with CETRIC;
the truss peeling itself is a small local post-process over the edge
support counts.

Run with::

    python examples/truss_decomposition.py
"""

import numpy as np

from repro.core.engine import EngineConfig
from repro.core.enumerate import enumerate_program, gather_all_triangles
from repro.graphs import dataset, distribute, from_edges
from repro.net import Machine

P = 8


def edge_supports(graph, triangles):
    """Support (number of containing triangles) per undirected edge."""
    edges = graph.undirected_edges()
    n = graph.num_vertices
    keys = edges[:, 0] * n + edges[:, 1]
    order = np.argsort(keys)
    sorted_keys = keys[order]
    support = np.zeros(edges.shape[0], dtype=np.int64)
    if triangles.size:
        tri_edges = np.concatenate(
            [triangles[:, [0, 1]], triangles[:, [0, 2]], triangles[:, [1, 2]]]
        )
        tri_keys = tri_edges[:, 0] * n + tri_edges[:, 1]
        idx = np.searchsorted(sorted_keys, tri_keys)
        np.add.at(support, order[idx], 1)
    return edges, support


def max_truss(graph, triangles):
    """Peel edges by support to find the largest k with a k-truss."""
    edges, support = edge_supports(graph, triangles)
    current = from_edges(edges, num_vertices=graph.num_vertices)
    k = 2
    while current.num_edges:
        k += 1
        # Iteratively remove edges with support < k-2.
        while True:
            dist = distribute(current, num_pes=P)
            res = Machine(P).run(enumerate_program, dist, EngineConfig(contraction=True))
            tri = gather_all_triangles(res.values)
            e, s = edge_supports(current, tri)
            keep = s >= k - 2
            if np.all(keep):
                break
            current = from_edges(e[keep], num_vertices=current.num_vertices)
            if current.num_edges == 0:
                break
        if current.num_edges == 0:
            return k - 1
    return k - 1


def main() -> None:
    graph = dataset("orkut", scale=0.25)
    dist = distribute(graph, num_pes=P)
    res = Machine(P).run(enumerate_program, dist, EngineConfig(contraction=True))
    triangles = gather_all_triangles(res.values)
    print(
        f"input: {graph.name} (n={graph.num_vertices:,}, m={graph.num_edges:,}); "
        f"{triangles.shape[0]:,} triangles enumerated on {P} simulated PEs"
    )

    edges, support = edge_supports(graph, triangles)
    print(f"max edge support: {support.max(initial=0)}")
    hist = np.bincount(np.minimum(support, 10))
    for s, count in enumerate(hist):
        label = f"{s}" if s < 10 else "10+"
        print(f"  support {label:>3s}: {count:7d} edges")

    k = max_truss(graph, triangles)
    print(f"\nlargest non-empty truss: k = {k}")
    assert k >= 3, "a graph with triangles has at least a 3-truss"
    print("k-truss decomposition over distributed enumeration works ✓")


if __name__ == "__main__":
    main()
