"""Local clustering coefficients for social-network analysis.

The paper's introduction motivates per-vertex triangle counts with
Becchetti et al.'s observation that the *distribution* of local
clustering coefficients separates organic accounts from spam/bot-like
vertices: spam vertices accumulate many neighbors that do not know
each other (high degree, low LCC).

This example builds a social-network stand-in, plants a handful of
"spam" vertices (random high-degree attachments), computes exact LCC
with the distributed CETRIC-based algorithm (Section IV-E), and shows
that a simple degree-vs-LCC rule recovers the planted vertices.

Run with::

    python examples/social_network_analysis.py
"""

import numpy as np

from repro import local_clustering_coefficients
from repro.graphs import from_edges, generators


def plant_spammers(graph, num_spammers: int, degree: int, seed: int):
    """Attach ``num_spammers`` new vertices to random targets each."""
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    extra = []
    for k in range(num_spammers):
        spammer = n + k
        targets = rng.choice(n, size=degree, replace=False)
        extra.extend((spammer, int(t)) for t in targets)
    edges = np.concatenate([graph.undirected_edges(), np.array(extra, dtype=np.int64)])
    return from_edges(edges, num_vertices=n + num_spammers, name="social+spam"), list(
        range(n, n + num_spammers)
    )


def main() -> None:
    base = generators.rhg(1 << 12, avg_degree=24, gamma=2.8, seed=7)
    graph, spammers = plant_spammers(base, num_spammers=8, degree=120, seed=11)
    print(f"graph: n={graph.num_vertices:,}, m={graph.num_edges:,}, planted spammers={len(spammers)}")

    lcc = local_clustering_coefficients(graph, num_pes=8)
    degrees = graph.degrees

    print(f"\nmean LCC    : {lcc.mean():.4f}")
    print(f"median LCC  : {np.median(lcc):.4f}")

    # Spam heuristic: high degree, anomalously low LCC.
    candidates = np.flatnonzero((degrees >= 100) & (lcc < 0.02))
    found = sorted(set(candidates.tolist()) & set(spammers))
    print(f"\nflagged {candidates.size} suspicious vertices; "
          f"{len(found)}/{len(spammers)} planted spammers recovered")
    print("degree / LCC of planted spammers:")
    for s in spammers:
        marker = "  <- flagged" if s in candidates else ""
        print(f"  vertex {s:6d}: degree {degrees[s]:4d}, LCC {lcc[s]:.4f}{marker}")

    assert len(found) >= len(spammers) - 1, "LCC analysis should recover the spammers"
    print("\nLCC-based spam detection works ✓")


if __name__ == "__main__":
    main()
