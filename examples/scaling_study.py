"""A miniature version of the paper's evaluation on one input.

Runs a strong-scaling sweep of all algorithms on a webbase-like web
graph (the locality-rich family where contraction has something to
work with) under two machine models — the paper's SuperMUC-like
interconnect and a high-latency cloud network — and prints the three
paper metrics (time, max messages, bottleneck volume) per machine.

The punchline reproduces Section V-E's prediction: on the fast
network, DITRIC's lower local work wins; on the slow network the
ranking flips and the communication-efficient CETRIC variant comes out
ahead of its DITRIC counterpart at every machine size.

Run with::

    python examples/scaling_study.py
"""

from repro.analysis.sweep import strong_scaling
from repro.analysis.tables import format_scaling_table, scaling_series
from repro.graphs import dataset
from repro.net import CLOUD, SUPERMUC

ALGOS = ("ditric", "ditric2", "cetric", "cetric2", "tric", "havoqgt")
PES = (4, 8, 16, 32)


def main() -> None:
    graph = dataset("webbase-2001", scale=1.0)
    print(f"input: {graph.name} (n={graph.num_vertices:,}, m={graph.num_edges:,})\n")

    times = {}
    for spec in (SUPERMUC, CLOUD):
        rows = strong_scaling(graph, ALGOS, PES, spec=spec, scale_memory=False)
        print(
            format_scaling_table(
                rows, "time", title=f"modelled time [s] on {spec.name} "
                f"(alpha={spec.alpha:.1e}s, beta={spec.beta:.1e}s/word)"
            )
        )
        print()
        series = scaling_series(rows, "time")
        times[spec.name] = {a: dict(series[a]) for a in ("ditric", "cetric")}

    # Pairwise DITRIC-vs-CETRIC comparison per cost model.
    fast, slow = times[SUPERMUC.name], times[CLOUD.name]
    fast_wins = sum(fast["ditric"][p] <= fast["cetric"][p] for p in PES)
    slow_wins = sum(slow["cetric"][p] <= slow["ditric"][p] for p in PES)
    print(f"on {SUPERMUC.name}: DITRIC beats CETRIC at {fast_wins}/{len(PES)} sizes")
    print(f"on {CLOUD.name:12s}: CETRIC beats DITRIC at {slow_wins}/{len(PES)} sizes")
    assert fast_wins >= len(PES) - 1, "fast network: local work dominates"
    assert slow_wins >= len(PES) - 1, "slow network: saved volume dominates"
    print(
        "\nSection V-E reproduced: contraction pays off exactly when the "
        "network, not the local work, is the bottleneck ✓"
    )


if __name__ == "__main__":
    main()
