"""Locality and contraction: why CETRIC wins on web graphs.

Web crawls assign nearby ids to pages of the same site, so a 1D
ID-partition cuts few edges.  CETRIC exploits this (Section IV-C):
after counting all type-1/type-2 triangles locally it contracts the
graph to its cut edges, making the global phase's communication volume
proportional to the cut rather than the whole neighborhood volume.

This example quantifies the effect on a webbase-2001 stand-in and on
the same graph with its ids randomly shuffled (destroying locality),
reproducing the paper's webbase-vs-friendster contrast in a single
controlled experiment.

Run with::

    python examples/web_graph_contraction.py
"""

import numpy as np

from repro.analysis.runner import run_algorithm
from repro.analysis.tables import format_table
from repro.graphs import dataset, distribute, relabel


def measure(graph, label, num_pes=16):
    dist = distribute(graph, num_pes=num_pes)
    cut_fraction = dist.total_cut_edges() / graph.num_edges
    dit = run_algorithm(dist, "ditric")
    cet = run_algorithm(dist, "cetric")
    assert dit.triangles == cet.triangles
    return {
        "input": label,
        "cut fraction": cut_fraction,
        "ditric volume": dit.bottleneck_volume,
        "cetric volume": cet.bottleneck_volume,
        "volume reduction": dit.bottleneck_volume / max(cet.bottleneck_volume, 1),
        "ditric global [s]": dit.phases["global"],
        "cetric global [s]": cet.phases["global"],
    }


def main() -> None:
    web = dataset("webbase-2001", scale=1.0)
    rng = np.random.default_rng(3)
    shuffled = relabel(web, rng.permutation(web.num_vertices))
    shuffled.name = "webbase-2001 (ids shuffled)"

    rows = [
        measure(web, "webbase-2001 (crawl order)"),
        measure(shuffled, "webbase-2001 (ids shuffled)"),
    ]
    print(
        format_table(
            rows,
            [
                "input",
                "cut fraction",
                "ditric volume",
                "cetric volume",
                "volume reduction",
                "ditric global [s]",
                "cetric global [s]",
            ],
            title="contraction pays where the partition has locality (p=16)",
        )
    )

    local, nonlocal_ = rows
    assert local["cut fraction"] < nonlocal_["cut fraction"]
    assert local["volume reduction"] > nonlocal_["volume reduction"]
    print(
        "\ncrawl-ordered ids: cut fraction "
        f"{local['cut fraction']:.2%}, contraction saves "
        f"{local['volume reduction']:.1f}x volume; after shuffling: cut "
        f"{nonlocal_['cut fraction']:.2%}, savings drop to "
        f"{nonlocal_['volume reduction']:.1f}x ✓"
    )


if __name__ == "__main__":
    main()
