"""Quickstart: count triangles on a generated graph with every algorithm.

Run with::

    python examples/quickstart.py

Generates a random hyperbolic graph (the paper's most interesting
synthetic family: heavy-tailed *and* local), counts its triangles with
the sequential oracle, DITRIC, CETRIC and the two baselines on a
simulated 16-PE machine, and prints the modelled cost of each run.
"""

from repro import count_triangles, generators
from repro.analysis.tables import format_table


def main() -> None:
    n = 1 << 13
    graph = generators.rhg(n, avg_degree=32, gamma=2.8, seed=42)
    print(f"input: {graph.name}  (n={graph.num_vertices:,}, m={graph.num_edges:,})\n")

    rows = []
    for algorithm in ("sequential", "ditric", "ditric2", "cetric", "cetric2", "tric", "havoqgt"):
        res = count_triangles(graph, algorithm=algorithm, num_pes=16)
        rows.append(
            {
                "algorithm": algorithm,
                "triangles": res.triangles,
                "modelled time [s]": res.time if algorithm != "sequential" else None,
                "max messages": res.max_messages or None,
                "bottleneck volume": res.bottleneck_volume or None,
            }
        )

    print(
        format_table(
            rows,
            ["algorithm", "triangles", "modelled time [s]", "max messages", "bottleneck volume"],
            title="triangle counting on a simulated 16-PE machine",
        )
    )

    counts = {r["triangles"] for r in rows}
    assert len(counts) == 1, "all algorithms must agree"
    print("\nall algorithms agree ✓")


if __name__ == "__main__":
    main()
