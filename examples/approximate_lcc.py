"""Approximate counting: the AMQ global phase vs sampling baselines.

The paper's Section IV-E argues its AMQ scheme is "particularly
interesting" because — unlike DOULION / colorful sampling, which only
estimate the *global* triangle count — it keeps type-1/2 triangles
exact and only approximates the cross-PE part, so accuracy stays high
at large communication savings.

This example sweeps the filter budget on a friendster-like graph and
contrasts accuracy/volume with DOULION and colorful counting at a
comparable reduction of processed data.

Run with::

    python examples/approximate_lcc.py
"""

from repro.analysis.tables import format_table
from repro.core.approx import amq_cetric_program, colorful, doulion
from repro.core.edge_iterator import edge_iterator
from repro.core.engine import EngineConfig, counting_program
from repro.graphs import dataset, distribute
from repro.net import Machine

P = 8


def main() -> None:
    graph = dataset("friendster", scale=0.5)
    truth = edge_iterator(graph).triangles
    dist = distribute(graph, num_pes=P)
    exact = Machine(P).run(counting_program, dist, EngineConfig(contraction=True))
    exact_volume = exact.metrics.bottleneck_volume
    print(
        f"input: {graph.name} (n={graph.num_vertices:,}, m={graph.num_edges:,}); "
        f"exact triangles = {truth:,}; exact bottleneck volume = {exact_volume:,} words\n"
    )

    rows = []
    for kind in ("bloom", "ssbf"):
        for budget in (4.0, 8.0, 16.0):
            res = Machine(P).run(amq_cetric_program, dist, amq_kind=kind, budget=budget)
            est = res.values[0].estimate_total
            rows.append(
                {
                    "method": f"AMQ {kind} (budget {budget:g})",
                    "estimate": round(est),
                    "error %": 100 * abs(est - truth) / truth,
                    "volume vs exact": res.metrics.bottleneck_volume / max(exact_volume, 1),
                }
            )
    for q in (0.5, 0.25):
        d = doulion(graph, q, seed=5)
        rows.append(
            {
                "method": f"DOULION q={q}",
                "estimate": round(d.estimate),
                "error %": 100 * abs(d.estimate - truth) / truth,
                "volume vs exact": d.reduced_edges / graph.num_edges,
            }
        )
    for colors in (2, 3):
        c = colorful(graph, colors, seed=5)
        rows.append(
            {
                "method": f"colorful N={colors}",
                "estimate": round(c.estimate),
                "error %": 100 * abs(c.estimate - truth) / truth,
                "volume vs exact": c.reduced_edges / graph.num_edges,
            }
        )

    print(
        format_table(
            rows,
            ["method", "estimate", "error %", "volume vs exact"],
            title=f"approximate triangle counting (p={P}; 'volume vs exact' = "
            "communication (AMQ) or surviving-edge fraction (sampling))",
        )
    )

    amq_err = max(r["error %"] for r in rows if r["method"].startswith("AMQ"))
    sample_err = max(r["error %"] for r in rows if not r["method"].startswith("AMQ"))
    print(
        f"\nworst AMQ error {amq_err:.2f}% vs worst sampling error "
        f"{sample_err:.2f}% — exact local counting keeps the AMQ estimator tight ✓"
    )


if __name__ == "__main__":
    main()
