"""Beyond triangles: structural analysis with the same substrate.

The paper's conclusion argues for graph-processing infrastructure that
serves "a variety of graph analysis tasks".  This example runs three
such tasks on one social-network stand-in:

1. distributed **k-core decomposition** (h-index iteration) on the
   simulated machine, validated against the sequential peeling;
2. **degeneracy ordering** — the theoretically optimal acyclic
   orientation — compared with the paper's degree ordering in terms of
   the maximum out-degree each induces;
3. a combined **community-core report**: the densest k-core's size and
   its internal clustering.

Run with::

    python examples/graph_structure_analysis.py
"""

import numpy as np

from repro.core import edge_iterator, kcore_program
from repro.core.orientation import orient, orient_by_degree
from repro.graphs import dataset, distribute, induced_subgraph
from repro.graphs.stats import core_numbers, degeneracy_order, degree_summary
from repro.net import Machine

P = 8


def main() -> None:
    graph = dataset("orkut", scale=0.5)
    summary = degree_summary(graph)
    print(
        f"input: {graph.name} (n={graph.num_vertices:,}, m={graph.num_edges:,}); "
        f"degrees: max={summary.max}, mean={summary.mean:.1f}, skew={summary.skew:.1f}"
    )

    # 1. Distributed k-core.
    dist = distribute(graph, num_pes=P)
    res = Machine(P).run(kcore_program, dist)
    cores = np.concatenate([v.cores for v in res.values])
    assert np.array_equal(cores, core_numbers(graph)), "distributed == sequential"
    kmax = int(cores.max())
    print(
        f"\nk-core decomposition on {P} simulated PEs: degeneracy {kmax}, "
        f"{res.values[0].rounds} synchronous rounds, "
        f"{res.metrics.total_volume:,} words exchanged"
    )

    # 2. Orientation quality: degree order vs degeneracy order.
    d_degree = orient_by_degree(graph).max_degree()
    d_degen = orient(graph, degeneracy_order(graph)).max_degree()
    print(
        f"max out-degree: degree ordering {d_degree}, degeneracy ordering "
        f"{d_degen} (optimal bound = degeneracy = {kmax})"
    )
    assert d_degen <= kmax

    # 3. The densest core as a community seed.
    dense_vertices = np.flatnonzero(cores == kmax)
    sub, _ = induced_subgraph(graph, dense_vertices)
    tri = edge_iterator(sub).triangles
    density = 2 * sub.num_edges / max(sub.num_vertices * (sub.num_vertices - 1), 1)
    print(
        f"densest core: {sub.num_vertices} vertices, {sub.num_edges} edges "
        f"(density {density:.2f}), {tri:,} triangles"
    )
    assert density > 0.1, "the top core should be dense"
    print("\nstructural analysis on the distributed substrate works ✓")


if __name__ == "__main__":
    main()
